"""Self-test for the static-analysis suite (``tools/analysis``).

The fixture files under ``tools/analysis/testdata/`` carry seeded
violations marked ``# EXPECT[CODE]`` on the exact offending line; the
tests copy them into a scratch repo tree, run the full checker battery
and assert the finding set matches the markers bit-for-bit.  A second
battery asserts the *real* repo is clean modulo the committed baseline,
and the CLI acceptance criterion (non-zero on fixtures, zero on repo)
is exercised through ``python -m tools.analysis`` subprocesses.
"""

import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:  # plain `pytest` does not add the rootdir
    sys.path.insert(0, str(REPO))

from tools.analysis import default_manager  # noqa: E402
from tools.analysis.core import (AnalysisContext, Finding,  # noqa: E402
                                 load_baseline, parse_suppressions,
                                 split_by_baseline)

TESTDATA = REPO / "tools" / "analysis" / "testdata"
EXPECT_RE = re.compile(r"EXPECT\[([A-Z0-9,]+)\]")

# fixture file -> destination inside the scratch repo tree.  The layout
# places each fixture where its checker's scan roots will find it; the
# scratch ``src/repro`` deliberately has NO __init__.py so the real
# ``repro`` package still wins import resolution for live registries.
FIXTURE_LAYOUT = {
    "det_unseeded.py": "src/repro/sim/det_unseeded.py",
    "det_wallclock.py": "src/repro/det_wallclock.py",
    "det_set_iter.py": "src/repro/sim/det_set_iter.py",
    "det_id_order.py": "src/repro/det_id_order.py",
    "det_float_eq.py": "src/repro/sim/det_float_eq.py",
    "det_arrival_mat.py": "src/repro/sim/det_arrival_mat.py",
    "det_pool_entropy.py": "src/repro/api/det_pool_entropy.py",
    "det_memo_state.py": "src/repro/accelos/det_memo_state.py",
    "reg_names.py": "src/repro/reg_names.py",
    "suppressed.py": "src/repro/suppressed.py",
    "skipped.py": "src/repro/skipped.py",
    "spec_bad.py": "src/repro/api/spec.py",
    "docs_bad.md": "DOCS_BAD.md",
    "spec_bad.json": "tests/goldens/spec_bad.json",
}

# the spec JSON cannot carry line markers; its expected violations live here
JSON_BAD_NAMES = ("no-such-scenario", "ghost-scheme", "fake-metric",
                  "not-a-rebalancer", "no-such-device")


def marker_expectations():
    """(dest_relpath, line, code) triples parsed from EXPECT markers."""
    expected = set()
    for name, dest in FIXTURE_LAYOUT.items():
        text = (TESTDATA / name).read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in EXPECT_RE.finditer(line):
                for code in match.group(1).split(","):
                    expected.add((dest, lineno, code))
    return expected


@pytest.fixture()
def scratch_repo(tmp_path):
    for name, dest in FIXTURE_LAYOUT.items():
        target = tmp_path / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(TESTDATA / name, target)
    return tmp_path


# -- the battery against seeded violations -----------------------------------

def test_fixture_findings_match_markers_exactly(scratch_repo):
    findings = default_manager().run(AnalysisContext(root=scratch_repo))
    got = {(f.file, f.line, f.code) for f in findings
           if not f.file.endswith(".json")}
    assert got == marker_expectations()


def test_fixture_spec_json_violations(scratch_repo):
    findings = default_manager().run(AnalysisContext(root=scratch_repo))
    json_findings = [f for f in findings if f.file.endswith(".json")]
    assert all(f.code == "R201" for f in json_findings)
    assert len(json_findings) == len(JSON_BAD_NAMES)
    for bad in JSON_BAD_NAMES:
        assert any(bad in f.message for f in json_findings), bad


def test_select_prefix_filters_checkers(scratch_repo):
    findings = default_manager(select=["D"]).run(
        AnalysisContext(root=scratch_repo))
    codes = {f.code for f in findings}
    # S001 directive findings ride along with whatever files were parsed
    assert codes <= {"D101", "D102", "D103", "D104", "D105", "D106",
                     "D107", "D108", "S001"}
    assert any(c.startswith("D") for c in codes)


# -- the battery against the real repo ---------------------------------------

def test_repo_is_clean_modulo_baseline():
    findings = default_manager().run(AnalysisContext(root=REPO))
    new, _, stale = split_by_baseline(findings, load_baseline())
    assert new == [], "\n".join(f.render() for f in new)
    assert stale == [], "stale baseline entries: {}".format(stale)


# -- CLI acceptance criterion ------------------------------------------------

def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "tools.analysis", "--no-external", *argv],
        cwd=str(REPO), capture_output=True, text=True)


def test_cli_exits_nonzero_on_fixture_tree(scratch_repo):
    proc = _run_cli(str(scratch_repo))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "analysis FAILED" in proc.stdout
    assert "D101" in proc.stdout and "R201" in proc.stdout


def test_cli_exits_zero_on_repo():
    proc = _run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "analysis OK: 0 new findings" in proc.stdout


def test_cli_list_checkers():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analysis", "--list-checkers"],
        cwd=str(REPO), capture_output=True, text=True)
    assert proc.returncode == 0
    for name in ("unseeded-random", "registry-literals", "spec-contract",
                 "markdown-links"):
        assert name in proc.stdout


# -- suppression directive parsing -------------------------------------------

def test_parse_suppressions_reasoned_and_bare():
    supp = parse_suppressions(
        "x = 1  # lint: ignore[D101] -- seeded elsewhere\n"
        "y = 2  # lint: ignore[D102]\n"
        "z = 3  # lint: ignore[D103, R201] -- two codes at once\n")
    assert supp.by_line[1] == {"D101"}
    assert 2 not in supp.by_line  # reasonless -> not a suppression
    assert supp.by_line[3] == {"D103", "R201"}
    assert [line for line, _ in supp.bad_directives] == [2]
    assert not supp.skip_file


def test_parse_suppressions_skip_file_requires_reason():
    with_reason = parse_suppressions("# lint: skip-file -- generated\n")
    assert with_reason.skip_file and not with_reason.bad_directives
    bare = parse_suppressions("# lint: skip-file\n")
    assert not bare.skip_file
    assert bare.bad_directives


def test_directive_inside_string_is_inert():
    supp = parse_suppressions('s = "# lint: ignore[D101] -- nope"\n')
    assert not supp.by_line
    assert not supp.bad_directives


def test_suppresses_matches_line_and_code():
    supp = parse_suppressions("x = 1  # lint: ignore[D101] -- why\n")
    assert supp.suppresses(Finding("f.py", 1, "D101", "m"))
    assert not supp.suppresses(Finding("f.py", 1, "D102", "m"))
    assert not supp.suppresses(Finding("f.py", 2, "D101", "m"))


# -- baseline bookkeeping ----------------------------------------------------

def test_split_by_baseline_partitions_and_reports_stale():
    live = Finding("a.py", 3, "D101", "msg one")
    fresh = Finding("b.py", 7, "D102", "msg two")
    baseline = [("a.py", "D101", "msg one"), ("c.py", "D103", "gone")]
    new, old, stale = split_by_baseline([live, fresh], baseline)
    assert new == [fresh]
    assert old == [live]
    assert stale == [("c.py", "D103", "gone")]


def test_baseline_key_ignores_line_drift():
    a = Finding("a.py", 3, "D101", "msg")
    b = Finding("a.py", 30, "D101", "msg")
    assert a.baseline_key() == b.baseline_key()


def test_finding_orders_and_renders():
    a = Finding("a.py", 1, "D101", "m")
    b = Finding("a.py", 2, "D101", "m")
    assert sorted([b, a]) == [a, b]
    assert a.render() == "a.py:1: D101 m"
