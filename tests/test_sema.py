"""Unit tests for semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.kernelc import frontend
from repro.kernelc import types as T


def analyze(source):
    return frontend(source)


def analyze_body(body, params="global float* a, global int* b, int n"):
    return analyze("kernel void f({}) {{ {} }}".format(params, body))


def expect_error(body, match, params="global float* a, global int* b, int n"):
    with pytest.raises(SemanticError, match=match):
        analyze_body(body, params=params)


def test_simple_kernel_passes():
    analyze_body("a[n] = 1.0f;")


def test_undeclared_identifier():
    expect_error("x = 1;", "undeclared identifier")


def test_redefinition_in_same_scope():
    expect_error("int x = 1; int x = 2;", "redefinition")


def test_shadowing_in_nested_scope_allowed():
    analyze_body("int x = 1; { int x = 2; a[x] = 0.0f; }")


def test_out_of_scope_use_rejected():
    expect_error("{ int x = 1; } a[x] = 0.0f;", "undeclared")


def test_kernel_must_return_void():
    with pytest.raises(SemanticError, match="must return void"):
        analyze("kernel int f() { return 1; }")


def test_kernel_pointer_args_need_address_space():
    with pytest.raises(SemanticError, match="global, local or constant"):
        analyze("kernel void f(float* a) {}")


def test_plain_function_private_pointer_ok():
    analyze("void g(float* p) { *p = 1.0f; }")


def test_local_array_only_in_kernels():
    with pytest.raises(SemanticError, match="local arrays"):
        analyze("void g() { local float tmp[8]; }")


def test_void_variable_rejected():
    expect_error("void x;", "void")


def test_return_type_mismatch():
    with pytest.raises(SemanticError):
        analyze("int f() { return; }")


def test_void_function_returning_value():
    with pytest.raises(SemanticError, match="void function"):
        analyze("void f() { return 1; }")


def test_break_outside_loop():
    expect_error("break;", "outside a loop")


def test_continue_inside_loop_ok():
    analyze_body("for (int i = 0; i < n; ++i) { if (i == 2) continue; }")


def test_pointer_arithmetic_types():
    program = analyze_body("global float* p = a + 3; a[0] = *p;")
    # type survives: no exception means the addition produced a pointer


def test_pointer_minus_pointer_types_as_long():
    # sema types ptr - ptr as long (C semantics); lowering rejects it since
    # no corpus kernel needs it
    program = analyze_body("long d = a - a;")
    decl = program.functions[0].body.statements[0].decls[0]
    assert decl.init.type == T.LONG


def test_bitwise_requires_integers():
    expect_error("float x = 1.5f & 2.0f;", "requires integers")


def test_shift_result_integer():
    analyze_body("int x = n << 2;")


def test_comparison_yields_bool_usable_in_if():
    analyze_body("if (n > 2) a[0] = 1.0f;")


def test_assign_float_to_int_pointer_target_ok():
    # C-style implicit conversion
    analyze_body("b[0] = 1.9f;")


def test_cannot_assign_to_rvalue():
    expect_error("(n + 1) = 2;", "not assignable")


def test_cannot_assign_to_array_name():
    with pytest.raises(SemanticError, match="assignable|not"):
        analyze("kernel void f() { local float t[4]; float q[4]; }")
        analyze_body("local float t[4]; t = 0.0f;", params="int n")


def test_call_builtin_arity_checked():
    expect_error("size_t x = get_global_id();", "expects 1")


def test_atomic_requires_pointer_to_int():
    expect_error("atomic_add(a, 1);", "pointer to an integer")


def test_atomic_requires_global_or_local():
    with pytest.raises(SemanticError, match="global or local"):
        analyze("void g() { int x = 0; atomic_add(&x, 1); }")


def test_call_unknown_function():
    expect_error("mystery(1);", "undeclared function")


def test_cannot_call_kernel():
    with pytest.raises(SemanticError, match="kernel functions cannot"):
        analyze("""
            kernel void k(global int* a) { a[0] = 1; }
            kernel void f(global int* a) { k(a); }
        """)


def test_user_call_arity_checked():
    with pytest.raises(SemanticError, match="expects 2 arguments"):
        analyze("""
            int add(int a, int b) { return a + b; }
            kernel void f(global int* out) { out[0] = add(1); }
        """)


def test_builtin_cannot_be_shadowed():
    with pytest.raises(SemanticError, match="shadows a builtin"):
        analyze("int sqrt(int x) { return x; }")


def test_duplicate_function_rejected():
    with pytest.raises(SemanticError, match="redefinition of function"):
        analyze("void f() {} void f() {}")


def test_expression_types_annotated():
    program = analyze_body("int x = n + 1;")
    func = program.functions[0]
    init = func.body.statements[0].decls[0].init
    assert init.type == T.INT


def test_common_type_promotion_to_float():
    program = analyze_body("float x = n + 1.5f;")
    init = program.functions[0].body.statements[0].decls[0].init
    assert init.type == T.FLOAT


def test_size_t_is_ulong():
    program = analyze_body("size_t g = get_global_id(0);")
    decl = program.functions[0].body.statements[0].decls[0]
    assert decl.type == T.ULONG
