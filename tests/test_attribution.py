"""Unit tests for the attribution plane: provenance tags, the kernel
footprint oracle, and the accounting ledger's decomposition/conservation
semantics (docs/ATTRIBUTION.md)."""

import json
import pickle

import pytest

from repro.accelos.memory_manager import MemoryManager
from repro.attribution import (AttributionLedger, Provenance, UNTENANTED,
                               kernel_footprint_bytes, tenant_label)
from repro.cl import Context, nvidia_k20m
from repro.errors import SimulationError
from repro.interp.executor import LaunchStats
from repro.interp.memory import alloc_buffer
from repro.kernelc import types as T
from repro.metrics import safe_share

FOOTPRINT = 100


def ledger(devices=("d",)):
    """A ledger with a constant footprint: occupancy math by hand."""
    return AttributionLedger(list(devices), footprint=lambda name: FOOTPRINT)


# -- safe_share (the zero-denominator guard) ------------------------------


def test_safe_share_guards_zero_denominator():
    assert safe_share(0.0, 0.0) == 0.0
    assert safe_share(1.0, 0.0) == 0.0
    assert safe_share(1.0, -2.0) == 0.0
    assert safe_share(1.0, float("nan")) == 0.0
    assert safe_share(1.0, float("inf")) == 0.0
    assert safe_share(1.0, 4.0) == 0.25


def test_single_request_audit_has_no_nans():
    """One request, no one ahead of it: every share is 0 or 1, never
    NaN (the single-request denominator regression)."""
    led = ledger()
    led.submit("r", "k", "solo", 0, 0.0, 1.0)
    led.finish("r", 0.0, 1.0)
    report = led.report()
    assert report.occupancy_share == {"solo": 1.0}
    assert report.tenant_occupancy == 1.0
    assert report.cross_tenant_induced_share == 0.0
    assert report.max_cross_tenant_induced_p99 == 0.0
    # the whole report serialises to finite JSON (NaN would throw here)
    json.dumps(report.to_dict(), allow_nan=False)


def test_zero_work_tenant_gets_zero_shares():
    """A tenant whose run carries no time at all (zero-duration request
    at t=0) produces 0-shares, not ZeroDivisionError/NaN."""
    led = ledger()
    led.submit("r", "k", "idle", 0, 0.0, 0.0)
    led.finish("r", 0.0, 0.0)
    report = led.report()
    assert report.makespan == 0.0
    assert report.occupancy_share == {"idle": 0.0}
    assert report.work["idle"]["queueing_seconds"] == 0.0
    json.dumps(report.to_dict(), allow_nan=False)


# -- the ahead-of-me delay decomposition ----------------------------------


def test_delay_charged_to_tenant_ahead():
    led = ledger()
    led.submit("a1", "k", "A", 0, 0.0, 2.0)
    led.submit("b1", "k", "B", 0, 1.0, 2.0)    # waits behind A's 2s
    led.finish("a1", 0.0, 2.0)                 # no delay, empty snapshot
    led.finish("b1", 2.0, 4.0)                 # 1s queueing delay
    report = led.report()
    assert report.induced_total["B"]["A"] == pytest.approx(1.0)
    assert report.induced_total["B"]["B"] == 0.0
    assert report.induced_total["A"]["A"] == 0.0
    assert report.aggressor_ranking()[0] == ("A", pytest.approx(1.0))


def test_delay_split_proportional_to_outstanding_work():
    led = ledger()
    led.submit("a1", "k", "A", 0, 0.0, 3.0)
    led.submit("b1", "k", "B", 0, 0.0, 1.0)
    led.submit("c1", "k", "C", 0, 0.5, 1.0)    # behind A(3s) + B(1s)
    led.finish("a1", 0.0, 3.0)
    led.finish("b1", 3.0, 4.0)
    led.finish("c1", 4.5, 5.5)                 # 4s delay, split 3:1
    report = led.report()
    assert report.induced_total["C"]["A"] == pytest.approx(3.0)
    assert report.induced_total["C"]["B"] == pytest.approx(1.0)
    assert report.induced_total["C"]["C"] == 0.0


def test_empty_snapshot_self_charges():
    """Delay with nobody ahead (e.g. scheduling overhead) stays on the
    victim's own diagonal instead of vanishing."""
    led = ledger()
    led.submit("a1", "k", "A", 0, 0.0, 1.0)
    led.finish("a1", 0.5, 1.5)                 # 0.5s delay, empty snapshot
    report = led.report()
    assert report.induced_total["A"]["A"] == pytest.approx(0.5)
    assert report.cross_tenant_induced_share == 0.0


# -- occupancy conservation -----------------------------------------------


def test_byte_seconds_integral_is_exact():
    led = ledger()
    led.submit("a1", "k", "A", 0, 0.0, 2.0)    # resident 0.0 -> 2.0
    led.submit("b1", "k", "B", 0, 1.0, 2.0)    # resident 1.0 -> 4.0
    led.finish("a1", 0.0, 2.0)
    led.finish("b1", 2.0, 4.0)
    report = led.report()
    cells = report.occupancy["d"]
    assert cells["A"]["byte_seconds"] == pytest.approx(FOOTPRINT * 2.0)
    assert cells["B"]["byte_seconds"] == pytest.approx(FOOTPRINT * 3.0)
    assert cells["A"]["peak_bytes"] == FOOTPRINT
    assert cells["A"]["resident_bytes"] == 0.0   # everything released
    assert report.occupancy_share["B"] == pytest.approx(0.6)


def test_resident_bytes_conserved_at_every_event():
    led = ledger(("d0", "d1"))
    led.submit("a1", "k", "A", 0, 0.0, 1.0)
    led.submit("b1", "k", "B", 0, 0.0, 1.0)
    assert led.resident_by_tenant(0) == {"A": FOOTPRINT, "B": FOOTPRINT}
    assert led.total_resident(0) == 2 * FOOTPRINT
    led.finish("a1", 0.0, 1.0)
    assert led.resident_by_tenant(0) == {"A": 0, "B": FOOTPRINT}
    assert led.total_resident(0) == FOOTPRINT
    led.finish("b1", 1.0, 2.0)
    assert led.total_resident(0) == 0


def test_conservation_violation_raises():
    led = ledger()
    with pytest.raises(SimulationError, match="conservation"):
        led._add_bytes(0, "A", -1)


def test_event_contract_violations_raise():
    led = ledger()
    led.submit("r", "k", "A", 0, 0.0, 1.0)
    with pytest.raises(SimulationError, match="twice"):
        led.submit("r", "k", "A", 0, 0.0, 1.0)
    with pytest.raises(SimulationError, match="unknown"):
        led.finish("ghost", 0.0, 1.0)
    with pytest.raises(SimulationError, match="migrate unknown"):
        led.migrate("ghost", 0, 0, 0.0, 0.1)
    with pytest.raises(SimulationError, match="outstanding"):
        led.report()


def test_ledger_needs_a_device():
    with pytest.raises(SimulationError, match="at least one device"):
        AttributionLedger([])


# -- migration charging ---------------------------------------------------


def test_migration_charged_to_dominant_source_tenant():
    led = ledger(("d0", "d1"))
    led.submit("a1", "k", "A", 0, 0.0, 5.0)
    led.submit("a2", "k", "A", 0, 0.0, 5.0)
    led.submit("b1", "k", "B", 0, 0.0, 1.0)
    led.migrate("b1", 0, 1, 1.0, 0.25)
    # the migrant's bytes moved with it
    assert led.resident_by_tenant(0) == {"A": 2 * FOOTPRINT, "B": 0}
    assert led.resident_by_tenant(1) == {"B": FOOTPRINT}
    led.finish("a1", 0.0, 5.0)
    led.finish("a2", 5.0, 10.0)
    led.finish("b1", 10.0, 11.0)
    report = led.report()
    # A's 10s of backlog triggered the move: A pays, nobody else does
    assert report.migration_costs == {"A": 0.25, "B": 0.0}
    assert report.migrations == 1


def test_migration_tie_breaks_lexicographically():
    led = ledger(("d0", "d1"))
    led.submit("c1", "k", "C", 0, 0.0, 5.0)
    led.submit("a1", "k", "A", 0, 0.0, 5.0)
    led.submit("b1", "k", "B", 0, 0.0, 1.0)
    led.migrate("b1", 0, 1, 1.0, 0.5)
    led.finish("a1", 0.0, 5.0)
    led.finish("c1", 5.0, 10.0)
    led.finish("b1", 10.0, 11.0)
    assert led.report().migration_costs == {"A": 0.5, "B": 0.0, "C": 0.0}


def test_lone_migrant_charges_itself():
    led = ledger(("d0", "d1"))
    led.submit("b1", "k", "B", 0, 0.0, 1.0)
    led.migrate("b1", 0, 1, 0.5, 0.125)
    led.finish("b1", 1.0, 2.0)
    assert led.report().migration_costs == {"B": 0.125}


def test_migration_folds_target_backlog_into_snapshot():
    """After the move the migrant also waits behind the target device's
    outstanding work — its delay decomposition must see both."""
    led = ledger(("d0", "d1"))
    led.submit("a1", "k", "A", 0, 0.0, 4.0)    # source backlog
    led.submit("c1", "k", "C", 1, 0.0, 4.0)    # target backlog
    led.submit("b1", "k", "B", 0, 1.0, 1.0)    # behind A on d0
    led.migrate("b1", 0, 1, 2.0, 0.0)          # now also behind C
    led.finish("a1", 0.0, 4.0)
    led.finish("c1", 0.0, 4.0)
    led.finish("b1", 5.0, 6.0)                 # 4s delay, split A:C = 1:1
    report = led.report()
    assert report.induced_total["B"]["A"] == pytest.approx(2.0)
    assert report.induced_total["B"]["C"] == pytest.approx(2.0)
    assert report.induced_total["B"]["B"] == 0.0


# -- the frozen report ----------------------------------------------------


def full_report():
    led = ledger(("d0", "d1"))
    led.submit("a1", "k", "A", 0, 0.0, 2.0)
    led.submit("b1", "k", "B", 0, 1.0, 2.0)
    led.submit("c1", "k", "C", 1, 1.0, 1.0)
    led.migrate("b1", 0, 1, 1.5, 0.25)
    led.finish("a1", 0.0, 2.0)
    led.finish("c1", 1.0, 2.0)
    led.finish("b1", 2.5, 4.5)
    return led.report()


def test_report_pickles_and_serialises():
    report = full_report()
    clone = pickle.loads(pickle.dumps(report))
    assert clone.to_dict() == report.to_dict()
    parsed = json.loads(json.dumps(report.to_dict(), sort_keys=True))
    assert parsed["requests"] == 3
    assert parsed["migrations"] == 1


def test_report_scalars_match_matrix():
    report = full_report()
    cross = max(report.induced_p99[v][a]
                for v in report.tenants for a in report.tenants if v != a)
    assert report.max_cross_tenant_induced_p99 == cross
    assert report.tenant_occupancy == max(report.occupancy_share.values())
    assert sum(report.occupancy_share.values()) == pytest.approx(1.0)


def test_state_cells_bounded_by_tenants_and_devices():
    """The memory-bound witness: cells depend on #tenants/#devices, not
    on how many requests streamed through."""
    led = ledger(("d0", "d1"))
    sizes = []
    for batch in range(4):
        for i in range(8):
            key = (batch, i)
            tenant = "t{}".format(i % 2)
            led.submit(key, "k", tenant, i % 2, float(batch), 1.0)
            led.finish(key, float(batch), batch + 1.0)
        sizes.append(led.state_cells())
    # after the first batch every (tenant, device) cell exists: steady
    assert sizes[1:] == [sizes[0]] * 3


# -- provenance tags ------------------------------------------------------


def test_tenant_label_defaults_untenanted():
    assert tenant_label(None) == UNTENANTED
    assert tenant_label("batch") == "batch"
    assert tenant_label(7) == "7"


def test_provenance_is_frozen_and_sortable():
    p = Provenance("batch", session="s0", request=3)
    assert p.label == "batch"
    assert p.as_dict() == {"tenant": "batch", "session": "s0",
                           "request": 3}
    with pytest.raises(AttributeError):
        p.tenant = "other"
    tags = [Provenance("b"), Provenance("a", request=1), Provenance("a")]
    ordered = sorted(tags, key=lambda t: t.sort_key())
    assert [t.tenant for t in ordered] == ["a", "a", "b"]


def test_provenance_threads_through_interp_allocations():
    p = Provenance("batch")
    pointer = alloc_buffer(T.FLOAT, 16, provenance=p)
    assert pointer.region.provenance is p
    assert alloc_buffer(T.FLOAT, 16).region.provenance is None


def test_provenance_survives_memory_manager_pause():
    """A paused allocation must keep its tag: when memory pressure
    clears, the retried buffer still bills the original tenant."""
    device = nvidia_k20m()
    context = Context(device)
    manager = MemoryManager(context)
    cap = device.global_mem_bytes
    first = manager.allocate("app0", T.FLOAT, cap // 4 - 1024, "big",
                             provenance=Provenance("interactive"))
    assert first is not None
    assert first.region.provenance.tenant == "interactive"
    paused = manager.allocate("app1", T.FLOAT, cap // 4 - 1024, "big2",
                              provenance=Provenance("batch"))
    assert paused is None and manager.is_paused("app1")
    manager.release("app0", first)
    granted = manager.claim("app1")
    assert len(granted) == 1
    assert granted[0].region.provenance.tenant == "batch"
    usage = manager.usage_by_provenance()
    assert list(usage) == sorted(usage)
    assert usage["batch"] > 0


# -- kernel work accounting -----------------------------------------------


def test_launch_stats_groups_iterate_sorted():
    stats = LaunchStats(provenance=Provenance("batch"))
    stats.record_group((1, 0, 0), 10)
    stats.record_group((0, 1, 0), 20)
    stats.record_group((0, 0, 0), 30)
    assert stats.groups() == [((0, 0, 0), 30), ((0, 1, 0), 20),
                              ((1, 0, 0), 10)]
    assert stats.instructions == 60
    assert stats.provenance.tenant == "batch"
    assert LaunchStats().provenance is None


def test_kernel_footprint_matches_functional_plane():
    size = kernel_footprint_bytes("sgemm")
    assert size == 20480
    # memoised: the second call must agree (and not rebuild datasets)
    assert kernel_footprint_bytes("sgemm") == size
