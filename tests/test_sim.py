"""Unit tests for the GPU timing simulator."""

import numpy as np
import pytest

from repro.cl import amd_r9_295x2, nvidia_k20m
from repro.errors import SimulationError
from repro.sim import ExecutionMode, GPUSimulator, KernelExecSpec
from repro.sim.contention import BandwidthTracker
from repro.sim.engine import EventQueue
from repro.sim.gpu import device_cost_scale, per_cu_residency_cap
from repro.sim.hw_sched import (ExclusiveHardwareScheduler,
                                FifoHardwareScheduler, scheduler_for)
from repro.sim.resources import CUState, max_resident_groups
from repro.sim.trace import ExecutionTrace, KernelInterval


def spec(name="k", n=128, cost=100e-6, wg=256, mem=0.0, regs=16, lmem=0,
         sat=1.0, cv=0.0, seed=0, **kw):
    rng = np.random.default_rng(seed)
    costs = np.full(n, cost)
    if cv:
        costs = costs * np.clip(1 + cv * rng.standard_normal(n), 0.3, 3.0)
    return KernelExecSpec(name, wg, costs, mem * 1e9, regs, lmem,
                          sat_occupancy=sat, **kw)


# -- engine -----------------------------------------------------------------

def test_event_queue_orders_by_time():
    q = EventQueue()
    q.push(3.0, "c")
    q.push(1.0, "a")
    q.push(2.0, "b")
    assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]
    assert q.now == 3.0


def test_event_queue_fifo_on_ties():
    q = EventQueue()
    q.push(1.0, "first")
    q.push(1.0, "second")
    assert [q.pop()[1], q.pop()[1]] == ["first", "second"]


def test_event_queue_rejects_past_events():
    q = EventQueue()
    q.push(2.0, "x")
    q.pop()
    with pytest.raises(SimulationError):
        q.push(1.0, "y")


def test_event_queue_empty_pop():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_event_queue_ties_never_compare_payloads():
    """Equal-time events pop in insertion order via the sequence counter
    even when the payloads themselves are mutually non-comparable (tuples
    vs None vs objects — exactly what the simulator pushes)."""

    class Opaque:
        __lt__ = None  # comparing two of these raises TypeError

    payloads = [("chunk", object(), 1), None, Opaque(), ("arrival", None),
                Opaque()]
    q = EventQueue()
    for payload in payloads:
        q.push(1.0, payload)
    q.push(0.5, "early")
    popped = [q.pop()[1] for _ in range(len(payloads) + 1)]
    assert popped[0] == "early"
    assert popped[1:] == payloads  # identity order preserved on the tie


def test_event_queue_interleaved_ties_stay_fifo():
    """Ties pushed across pops still break by insertion order."""
    q = EventQueue()
    q.push(1.0, "a")
    q.push(1.0, "b")
    assert q.pop()[1] == "a"
    q.push(1.0, "c")  # same timestamp, pushed later than b
    assert [q.pop()[1], q.pop()[1]] == ["b", "c"]


def test_event_queue_rejects_nan_time():
    q = EventQueue()
    with pytest.raises(SimulationError, match="NaN"):
        q.push(float("nan"), "x")
    assert not q  # nothing was enqueued


# -- resources -----------------------------------------------------------------

def test_cu_admit_release_roundtrip():
    dev = nvidia_k20m()
    cu = CUState(0, dev)
    s = spec(wg=512, regs=32, lmem=1024)
    assert cu.fits(s)
    cu.admit(s)
    assert cu.threads_free == dev.max_threads_per_cu - 512
    cu.release(s)
    assert cu.threads_free == dev.max_threads_per_cu


def test_cu_rejects_overflow():
    dev = nvidia_k20m()
    cu = CUState(0, dev)
    s = spec(wg=2048)
    cu.admit(s)
    assert not cu.fits(s)
    with pytest.raises(SimulationError):
        cu.admit(s)


def test_max_resident_groups_thread_bound():
    dev = nvidia_k20m()
    assert max_resident_groups(spec(wg=256, regs=1), dev) == 13 * 8
    assert max_resident_groups(spec(wg=512, regs=1), dev) == 13 * 4


def test_max_resident_groups_register_bound():
    dev = nvidia_k20m()
    heavy = spec(wg=256, regs=128)  # 32768 regs per WG -> 2 per CU
    assert max_resident_groups(heavy, dev) == 13 * 2


def test_per_cu_residency_cap_lmem_bound():
    dev = nvidia_k20m()
    s = spec(wg=64, lmem=24 * 1024)
    assert per_cu_residency_cap(s, dev) == 2


# -- contention ----------------------------------------------------------------

def test_bandwidth_no_stretch_under_capacity():
    bw = BandwidthTracker(nvidia_k20m())
    bw.add_rate(50e9)
    assert bw.stretch(10e9) == 1.0


def test_bandwidth_stretch_for_heavy_wg():
    bw = BandwidthTracker(nvidia_k20m())  # 208 GB/s
    for _ in range(100):
        bw.add_rate(4e9)
    # heavy demander above fair share is throttled
    assert bw.stretch(4e9) == pytest.approx(404 / 208, rel=1e-3)


def test_bandwidth_light_wg_unthrottled():
    bw = BandwidthTracker(nvidia_k20m())
    for _ in range(100):
        bw.add_rate(4e9)
    # a compute-bound WG below the per-WG fair share is not stretched
    assert bw.stretch(0.5e9) == 1.0


# -- hardware schedulers -----------------------------------------------------------

def test_scheduler_for_devices():
    assert isinstance(scheduler_for(nvidia_k20m()), FifoHardwareScheduler)
    assert isinstance(scheduler_for(amd_r9_295x2()), ExclusiveHardwareScheduler)


def test_device_cost_scale_reference_is_one():
    assert device_cost_scale(nvidia_k20m()) == pytest.approx(1.0)
    assert device_cost_scale(amd_r9_295x2()) > 1.0  # slower per CU


# -- hardware mode ------------------------------------------------------------------

def test_isolated_makespan_close_to_work_over_capacity():
    dev = nvidia_k20m()
    s = spec(n=1040, cost=100e-6)
    trace = GPUSimulator(dev).run([s])
    capacity = max_resident_groups(s, dev)
    ideal = 1040 * 100e-6 / capacity
    assert ideal <= trace.makespan <= ideal * 1.2


def test_two_kernels_serialise_under_fifo():
    dev = nvidia_k20m()
    a, b = spec("a", n=1024), spec("b", n=1024, seed=1)
    trace = GPUSimulator(dev).run([a, b])
    ia, ib = trace.intervals
    # b cannot start before a has dispatched everything
    assert ib.start >= ia.dispatch_done
    assert 0.0 <= trace.execution_overlap() < 0.5


def test_exclusive_scheduler_zero_overlap():
    dev = amd_r9_295x2()
    a, b = spec("a", n=2048), spec("b", n=2048, seed=1)
    trace = GPUSimulator(dev).run([a, b])
    assert trace.execution_overlap() == 0.0


def test_small_kernels_overlap_under_fifo():
    dev = nvidia_k20m()
    # both kernels fit simultaneously: once the firmware handoff window
    # passes, the second kernel co-runs with the first's long work groups
    a = spec("a", n=20, cost=2e-3)
    b = spec("b", n=20, cost=2e-3, seed=1)
    trace = GPUSimulator(dev).run([a, b])
    assert trace.execution_overlap() > 0.5


def test_completion_conservation_hardware():
    dev = nvidia_k20m()
    specs = [spec("a", n=333, cv=0.5), spec("b", n=77, seed=1)]
    sim = GPUSimulator(dev)
    trace = sim.run(specs)
    for run in sim.runs:
        assert run.completed == run.total
        assert run.resident == 0


def test_memory_bound_kernel_bandwidth_limited():
    dev = nvidia_k20m()
    s = spec(n=1040, cost=100e-6, mem=5.0)
    trace = GPUSimulator(dev).run([s])
    bw_floor = 1040 * 100e-6 * 5e9 / 208e9
    assert trace.makespan >= bw_floor * 0.95


# -- software modes ------------------------------------------------------------------

def test_accelos_mode_full_overlap_and_fairness():
    dev = nvidia_k20m()
    cap = max_resident_groups(spec(), dev)
    a = spec("a", n=1024).with_mode(ExecutionMode.ACCELOS,
                                    physical_groups=cap // 2)
    b = spec("b", n=1024, seed=1).with_mode(ExecutionMode.ACCELOS,
                                            physical_groups=cap // 2)
    trace = GPUSimulator(dev).run([a, b])
    assert trace.execution_overlap() > 0.9
    ta, tb = trace.turnarounds
    assert abs(ta - tb) / max(ta, tb) < 0.1


def test_accelos_dequeue_overhead_visible_with_chunk_one():
    dev = nvidia_k20m()
    base = spec(n=1024, cost=20e-6)
    fat = base.with_mode(ExecutionMode.ACCELOS, physical_groups=64, chunk=8)
    thin = base.with_mode(ExecutionMode.ACCELOS, physical_groups=64, chunk=1)
    t_fat = GPUSimulator(dev).run([fat]).makespan
    t_thin = GPUSimulator(dev).run([thin]).makespan
    assert t_thin > t_fat  # more scheduling operations, more overhead


def test_accelos_resources_bound_until_finish():
    dev = nvidia_k20m()
    # one long kernel, one short: the long one must NOT speed up after the
    # short one finishes (paper §2.5: allocations are bound)
    long_alone = spec("long", n=512, cost=200e-6).with_mode(
        ExecutionMode.ACCELOS, physical_groups=26)
    t_alone = GPUSimulator(dev).run([long_alone]).makespan
    short = spec("short", n=16, cost=50e-6, seed=1).with_mode(
        ExecutionMode.ACCELOS, physical_groups=16)
    t_shared = GPUSimulator(dev).run([long_alone, short]).turnarounds[0]
    assert t_shared == pytest.approx(t_alone, rel=0.02)


def test_elastic_mode_static_assignment_completes():
    dev = nvidia_k20m()
    s = spec(n=100, cv=0.6).with_mode(ExecutionMode.ELASTIC,
                                      physical_groups=16)
    sim = GPUSimulator(dev)
    trace = sim.run([s])
    assert sim.runs[0].completed == 100


def test_elastic_static_imbalance_slower_than_dynamic():
    dev = nvidia_k20m()
    base = spec(n=512, cv=0.8, cost=100e-6)
    elastic = base.with_mode(ExecutionMode.ELASTIC, physical_groups=64)
    accelos = base.with_mode(ExecutionMode.ACCELOS, physical_groups=64,
                             chunk=1, sched_overhead=0.0)
    t_elastic = GPUSimulator(dev).run([elastic]).makespan
    t_accelos = GPUSimulator(dev).run([accelos]).makespan
    assert t_accelos <= t_elastic


def test_pending_slots_eventually_placed():
    dev = nvidia_k20m()
    # request more physical groups than fit concurrently: the extras queue
    cap = max_resident_groups(spec(), dev)
    s = spec(n=cap * 4).with_mode(ExecutionMode.ACCELOS,
                                  physical_groups=cap * 2)
    sim = GPUSimulator(dev)
    trace = sim.run([s])
    assert sim.runs[0].completed == cap * 4


def test_mixed_modes_rejected():
    dev = nvidia_k20m()
    a = spec("a")
    b = spec("b").with_mode(ExecutionMode.ACCELOS, physical_groups=4)
    with pytest.raises(SimulationError, match="mixed"):
        GPUSimulator(dev).run([a, b])


def test_empty_batch_rejected():
    with pytest.raises(SimulationError):
        GPUSimulator(nvidia_k20m()).run([])


def test_jitter_scales_costs():
    dev = nvidia_k20m()
    s = spec(n=256)
    t1 = GPUSimulator(dev).run([s], cost_jitter=[1.0]).makespan
    t2 = GPUSimulator(dev).run([s], cost_jitter=[1.1]).makespan
    assert t2 == pytest.approx(t1 * 1.1, rel=1e-6)


# -- traces ------------------------------------------------------------------------

def test_trace_overlap_disjoint_is_zero():
    trace = ExecutionTrace([
        KernelInterval("a", 0.0, 1.0, 0.5, 1.0),
        KernelInterval("b", 1.0, 2.0, 1.5, 1.0),
    ], "dev", "hardware")
    assert trace.execution_overlap() == 0.0


def test_trace_overlap_nested_intervals():
    trace = ExecutionTrace([
        KernelInterval("a", 0.0, 4.0, 1.0, 1.0),
        KernelInterval("b", 1.0, 2.0, 1.0, 1.0),
    ], "dev", "hardware")
    assert trace.execution_overlap() == pytest.approx(0.25)


def test_trace_makespan():
    trace = ExecutionTrace([
        KernelInterval("a", 0.0, 3.0, 1.0, 1.0),
        KernelInterval("b", 0.0, 5.0, 1.0, 1.0),
    ], "dev", "hardware")
    assert trace.makespan == 5.0
