"""End-to-end integration tests: the paper's headline claims in miniature."""

import numpy as np
import pytest

from repro.accelos import AccelOSRuntime
from repro.cl import NDRange, amd_r9_295x2, nvidia_k20m
from repro.harness import run_workload
from repro.kernelc import types as T
from repro.workloads.datasets import build_instance
from repro.workloads.parboil import profile_by_name

FIG2_WORKLOAD = ("bfs", "cutcp", "stencil", "tpacf")


@pytest.mark.parametrize("device_factory", [nvidia_k20m, amd_r9_295x2])
def test_fig2_accelos_fairer_and_overlapping(device_factory):
    dev = device_factory()
    base = run_workload(FIG2_WORKLOAD, "baseline", dev, repetitions=2)
    accel = run_workload(FIG2_WORKLOAD, "accelos", dev, repetitions=2)
    assert accel.unfairness < base.unfairness
    assert accel.overlap > base.overlap
    # baseline slowdowns grow with queue position (serialisation)
    assert base.slowdowns[0] == min(base.slowdowns)


def test_fig2_ek_between_baseline_and_accelos():
    dev = nvidia_k20m()
    base = run_workload(FIG2_WORKLOAD, "baseline", dev, repetitions=2)
    ek = run_workload(FIG2_WORKLOAD, "ek", dev, repetitions=2)
    accel = run_workload(FIG2_WORKLOAD, "accelos", dev, repetitions=2)
    assert accel.unfairness <= ek.unfairness or ek.unfairness < base.unfairness


def test_unfairness_grows_with_request_count_baseline_only():
    dev = nvidia_k20m()
    from repro.workloads import random_workloads
    baseline_by_k = {}
    accel_by_k = {}
    for k in (2, 4, 8):
        workloads = random_workloads(k, 8)
        baseline_by_k[k] = np.mean([
            run_workload(w, "baseline", dev, repetitions=1).unfairness
            for w in workloads])
        accel_by_k[k] = np.mean([
            run_workload(w, "accelos", dev, repetitions=1).unfairness
            for w in workloads])
    assert baseline_by_k[2] < baseline_by_k[4] < baseline_by_k[8]
    assert accel_by_k[8] < baseline_by_k[8] / 3


def test_transparent_multi_tenant_correctness():
    """Two applications share the device through accelOS; both get correct
    results even though their kernels were transformed and co-scheduled."""
    runtime = AccelOSRuntime(nvidia_k20m())

    sessions = []
    for app_id, name in (("app0", "spmv"), ("app1", "histo_main")):
        profile = profile_by_name(name)
        instance = build_instance(name)
        app = runtime.session(app_id)
        program = app.create_program(profile.source).build()
        kernel = program.create_kernel(instance.kernel)
        queue = app.create_queue()
        buffers = []
        args = []
        for kind, value in instance.fresh_args():
            if kind == "scalar":
                args.append(value)
                continue
            array = np.asarray(value)
            elem = {np.dtype(np.int32): T.INT,
                    np.dtype(np.float32): T.FLOAT}[array.dtype]
            buf = app.create_buffer(elem, array.size)
            queue.enqueue_write_buffer(buf, array)
            args.append(buf)
            buffers.append((kind, buf, array.dtype))
        kernel.set_args(*args)
        queue.enqueue_nd_range(
            kernel, NDRange(instance.global_size, instance.local_size))
        sessions.append((name, instance, queue, buffers))

    plans = runtime.drain()
    assert len(plans) == 2
    assert sum(p.physical_groups * p.requirements.wg_threads
               for p in plans) <= runtime.context.device.max_threads

    # validate against untouched single-app execution
    from tests.conftest import run_functional
    from repro.workloads.parboil import compiled_module
    for name, instance, queue, buffers in sessions:
        module = compiled_module(instance.benchmark)
        expected = run_functional(module, instance.kernel,
                                  instance.fresh_args(),
                                  instance.global_size, instance.local_size)
        out_buffers = [b for b in buffers if b[0] == "out"]
        out_indices = sorted(expected)
        assert len(out_buffers) == len(out_indices)
        for (kind, buf, dtype), index in zip(out_buffers, out_indices):
            np.testing.assert_array_equal(queue.enqueue_read_buffer(buf),
                                          expected[index])


def test_single_kernel_optimized_vs_naive_fig15_shape():
    from repro.accelos.adaptive import SchedulingPolicy
    from repro.harness import run_single_kernel
    dev = nvidia_k20m()
    speedups = {"naive": [], "adaptive": []}
    for name in ("bfs", "spmv", "mri-gridding_splitSort", "sgemm"):
        for policy, key in ((SchedulingPolicy.NAIVE, "naive"),
                            (SchedulingPolicy.ADAPTIVE, "adaptive")):
            t, iso = run_single_kernel(name, dev, policy=policy)
            speedups[key].append(iso / t)
    # the optimized version amortises dequeue overhead: never slower than
    # naive on average
    assert np.mean(speedups["adaptive"]) >= np.mean(speedups["naive"]) - 0.02
