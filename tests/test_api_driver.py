"""The declarative driver: ``run(spec)`` end to end.

Four contracts:

* **pure re-plumbing** — a spec naming the historical scenario/seed/load
  points reproduces the pre-API golden traces bit-identically (the
  redesign moved wiring, not numbers);
* **streaming** — ``iter_runs`` yields ``(cell, result)`` pairs
  incrementally, in deterministic grid order;
* **extensibility** — a user-registered toy scheme runs through
  ``run(spec)``, the open-system harness and the golden-trace entry path
  with no other changes;
* **CLI** — ``python -m repro.api.run`` reproduces the checked-in smoke
  result byte for byte (the same diff CI enforces).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import (ExperimentSpec, RequestRecord, SchedulingScheme,
                       arrival_rate_for_load, fleet_arrival_rate_for_load,
                       isolated_time, iter_runs, register_scheme, run,
                       scheme_names, unregister_scheme)
from repro.api.driver import stream_seed
from repro.cl import nvidia_k20m
from repro.errors import SimulationError
from repro.harness.open_system import OpenSystemExperiment
from repro.sim.fleet import DeviceFleet
from repro.workloads import from_name

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).parent / "goldens"

# the pre-API golden-trace grid (tests/test_golden_traces.py)
TRACE_SEED = 5
TRACE_COUNT = 6
TRACE_LOAD = 1.0


def trace_spec(base, scheme):
    return ExperimentSpec(
        scenario="steady", schemes=(scheme,), loads=(TRACE_LOAD,),
        seeds=(TRACE_SEED,), count=TRACE_COUNT,
        devices=({"id": base, "base": base},))


# -- pure re-plumbing: pre-port goldens reproduce through run(spec) -----------

@pytest.mark.parametrize("fixture, base, scheme", [
    ("trace_fifo_baseline.json", "nvidia-k20m", "baseline"),
    ("trace_exclusive_baseline.json", "amd-r9-295x2", "baseline"),
    ("trace_accelos.json", "nvidia-k20m", "accelos"),
    ("trace_ek.json", "nvidia-k20m", "ek"),
])
def test_run_spec_reproduces_pre_port_goldens(fixture, base, scheme):
    """Bit-identical per-request completion times vs the pre-port goldens:
    the API redesign must be a pure re-plumbing."""
    results = run(trace_spec(base, scheme))
    payload = [[r.name, r.arrival, r.start, r.finish]
               for r in results.records(scheme=scheme)]
    stored = json.loads((GOLDEN_DIR / fixture).read_text(encoding="utf-8"))
    assert payload == stored


def test_spec_streams_match_from_name_bit_for_bit():
    """The driver's stream construction is the scenario engine's."""
    spec = trace_spec("nvidia-k20m", "baseline")
    from repro.api import build_stream
    device = nvidia_k20m()
    ours = build_stream(spec, TRACE_LOAD, TRACE_SEED, 0, device=device)
    theirs = from_name("steady", seed=TRACE_SEED, load=TRACE_LOAD,
                       count=TRACE_COUNT, device=device)
    assert [(a.name, a.time) for a in ours] \
        == [(a.name, a.time) for a in theirs]


# -- streaming and grid shape --------------------------------------------------

def test_iter_runs_yields_incrementally_in_grid_order():
    spec = ExperimentSpec(scenario="steady", loads=(0.8, 1.2), seeds=(3,),
                          count=4)
    stream = iter_runs(spec)
    first_cell, first_result = next(stream)  # nothing else ran yet
    assert (first_cell.scheme, first_cell.load) == (spec.schemes[0], 0.8)
    assert first_result.records
    rest = list(stream)
    assert len(rest) == spec.cell_count() - 1
    assert [c.load for c, _ in rest][-1] == 1.2


def test_run_is_deterministic_and_serializable():
    spec = ExperimentSpec(scenario="bursty", loads=(1.0,), seeds=(2,),
                          count=5)
    a, b = run(spec), run(spec)
    assert a.to_json() == b.to_json()
    document = json.loads(a.to_json())
    assert document["spec"] == spec.to_dict()
    assert len(document["cells"]) == spec.cell_count()


def test_repetitions_derive_independent_streams():
    spec = ExperimentSpec(scenario="steady", loads=(1.0,), seeds=(4,),
                          count=5, repetitions=2)
    results = run(spec)
    assert len(results) == spec.cell_count()
    rep0 = results.records(scheme="accelos", repetition=0)
    rep1 = results.records(scheme="accelos", repetition=1)
    # repetition 0 is the seed verbatim (historical streams reproduce);
    # repetition 1 draws a derived child seed => a different stream
    assert stream_seed(4, 0) == 4 and stream_seed(4, 1) != 4
    assert [r.arrival for r in rep0] != [r.arrival for r in rep1]


def test_fleet_spec_runs_per_placement():
    spec = ExperimentSpec(
        scenario="steady", schemes=("accelos",), loads=(1.0,), seeds=(1,),
        count=6,
        devices=({"id": "fast", "base": "nvidia-k20m"},
                 {"id": "slow", "base": "nvidia-k20m",
                  "clock_scale": 0.5, "cu_scale": 0.5}),
        placements=("round-robin", "least-loaded"))
    results = run(spec)
    assert len(results) == 2
    for placement in spec.placements:
        result = results.get(placement=placement)
        assert set(result.fleet_ids) == {"fast", "slow"}
        assert len(result.overall.records) == 6


def test_resultset_get_requires_unique_match():
    spec = ExperimentSpec(scenario="steady", loads=(1.0,), seeds=(1,),
                          count=4)
    results = run(spec)
    with pytest.raises(SimulationError, match="narrow the criteria"):
        results.get(load=1.0)
    with pytest.raises(SimulationError, match="no result cell"):
        results.get(scheme="accelos", load=9.9)


# -- user-registered schemes everywhere ----------------------------------------

class ToyScheme(SchedulingScheme):
    """Strict one-at-a-time service in arrival order (test toy)."""

    name = "toy-serial"

    def open_records(self, arrivals, device, **knobs):
        free_at = 0.0
        records = [None] * len(arrivals)
        order = sorted(range(len(arrivals)),
                       key=lambda i: (arrivals[i].time, i))
        for i in order:
            a = arrivals[i]
            start = max(free_at, a.time)
            service = isolated_time(a.name, device)
            records[i] = RequestRecord(a.name, a.time, start,
                                       start + service, service,
                                       tenant=a.tenant)
            free_at = start + service
        return records


@pytest.fixture
def toy_scheme():
    scheme = register_scheme(ToyScheme)
    try:
        yield scheme
    finally:
        unregister_scheme(scheme.name)


def test_registered_toy_scheme_runs_through_run_spec(toy_scheme):
    assert "toy-serial" in scheme_names()
    spec = ExperimentSpec(scenario="steady",
                          schemes=("baseline", "toy-serial"),
                          loads=(1.0,), seeds=(5,), count=6)
    results = run(spec)
    toy = results.get(scheme="toy-serial")
    assert len(toy.records) == 6
    # one-at-a-time service never overlaps: starts are non-decreasing and
    # each request starts no earlier than the previous one finished
    ordered = sorted(toy.records, key=lambda r: r.start)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.start >= earlier.finish - 1e-12
    # and it shows up in the serialized report like any built-in
    assert any(c.scheme == "toy-serial"
               for c, _ in results.select(scheme="toy-serial"))


def test_registered_toy_scheme_runs_through_golden_trace_harness(toy_scheme):
    """The golden-trace entry path (OpenSystemExperiment.scheme_records)
    accepts the registered toy exactly like a built-in."""
    device = nvidia_k20m()
    stream = from_name("steady", seed=TRACE_SEED, load=TRACE_LOAD,
                       count=TRACE_COUNT, device=device)
    records = OpenSystemExperiment(device).scheme_records(stream,
                                                          "toy-serial")
    assert len(records) == TRACE_COUNT
    assert [r.name for r in records] == [a.name for a in stream]


def test_run_all_default_includes_user_registered_scheme(toy_scheme):
    """run_all's scheme default resolves the live registry at call time,
    so a user scheme registered after harness import is not dropped."""
    device = nvidia_k20m()
    stream = from_name("steady", seed=1, load=1.0, count=3, device=device)
    results = OpenSystemExperiment(device).run_all(stream)
    assert set(results) == {"baseline", "ek", "accelos", "toy-serial"}


def test_open_only_scheme_cannot_break_closed_sweeps(toy_scheme):
    """The toy implements only open_records: closed-sweep defaults skip
    it (capability-filtered), and asking for it explicitly raises the
    actionable capability error, not a bare NotImplementedError."""
    from repro.api import closed_scheme_names, open_scheme_names
    from repro.harness import run_workload
    assert "toy-serial" in open_scheme_names()
    assert "toy-serial" not in closed_scheme_names()
    assert not toy_scheme.supports_closed and toy_scheme.supports_open
    with pytest.raises(SimulationError,
                       match="no closed-batch mode") as excinfo:
        run_workload(("bfs", "sgemm"), "toy-serial", nvidia_k20m())
    assert "accelos" in str(excinfo.value)  # lists capable schemes


def test_unknown_scheme_error_lists_registered_names():
    device = nvidia_k20m()
    stream = from_name("steady", seed=1, load=1.0, count=3, device=device)
    with pytest.raises(SimulationError, match="unknown scheme") as excinfo:
        OpenSystemExperiment(device).scheme_records(stream, "fifo2")
    message = str(excinfo.value)
    for name in ("baseline", "ek", "accelos"):
        assert name in message


def test_spec_validation_sees_user_registered_scheme(toy_scheme):
    spec = ExperimentSpec(schemes=("toy-serial",), count=4)
    assert spec.schemes == ("toy-serial",)


def test_registered_metric_selectable_in_spec_and_report():
    from repro.api import register_metric, unregister_metric
    register_metric("mean_slowdown", lambda r: r.slowdown_tails.mean)
    try:
        spec = ExperimentSpec(scenario="steady", schemes=("baseline",),
                              loads=(1.0,), seeds=(1,), count=4,
                              metrics=("antt", "mean_slowdown"))
        results = run(spec)
        document = json.loads(results.to_json())
        assert "mean_slowdown" in document["cells"][0]["metrics"]
        assert results.metric("mean_slowdown", scheme="baseline") > 0
    finally:
        unregister_metric("mean_slowdown")
    with pytest.raises(SimulationError, match="unknown metric"):
        ExperimentSpec(metrics=("mean_slowdown",))


def test_derated_device_names_encode_scales_not_ids():
    """Two different deratings reusing one fleet id must not share the
    name-keyed calibration caches (isolated times, chunks)."""
    from repro.api import DeviceEntry, build_device
    a = build_device(DeviceEntry(id="slow", base="nvidia-k20m",
                                 clock_scale=0.4, cu_scale=0.5))
    b = build_device(DeviceEntry(id="slow", base="nvidia-k20m",
                                 clock_scale=0.8))
    assert a.name != b.name
    assert isolated_time("bfs", a) != isolated_time("bfs", b)
    # equal deratings share one name (and so one cache entry) by design
    c = build_device(DeviceEntry(id="other", base="nvidia-k20m",
                                 clock_scale=0.8))
    assert c.name == b.name


# -- load-calibration dedup ----------------------------------------------------

def test_fleet_rate_delegates_to_single_device_calibration():
    """A one-device fleet offers exactly the single-device rate, and an
    N-homogeneous fleet offers N times it (shared mean-service helper)."""
    device = nvidia_k20m()
    single = arrival_rate_for_load(1.3, device)
    one = DeviceFleet([("a", nvidia_k20m())])
    two = DeviceFleet([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    assert fleet_arrival_rate_for_load(1.3, one) == pytest.approx(single)
    assert fleet_arrival_rate_for_load(1.3, two) \
        == pytest.approx(2 * single)
    names = ("bfs", "sgemm")
    weighted = arrival_rate_for_load(0.7, device, names=names,
                                     weights=(3.0, 1.0))
    assert fleet_arrival_rate_for_load(0.7, one, names=names,
                                       weights=(3.0, 1.0)) \
        == pytest.approx(weighted)


def test_cli_module_import_cannot_break_run_callable():
    """Importing the CLI submodule shadows the package's ``run``
    attribute with the module; the module is callable, so repro.api.run
    keeps working as the driver either way."""
    import repro.api
    import repro.api.run as cli  # shadows repro.api.run with the module
    assert repro.api.run is cli
    spec = ExperimentSpec(scenario="steady", schemes=("baseline",),
                          loads=(1.0,), seeds=(1,), count=3)
    results = repro.api.run(spec)  # the module delegates to the driver
    assert len(results) == 1


# -- the CLI (the CI smoke step's in-repo guard) -------------------------------

def test_cli_reproduces_checked_in_smoke_result(tmp_path):
    out = tmp_path / "result.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    subprocess.run(
        [sys.executable, "-m", "repro.api.run",
         str(GOLDEN_DIR / "spec_smoke.json"), "--out", str(out),
         "--quiet"],
        check=True, cwd=REPO_ROOT, env=env)
    golden = (GOLDEN_DIR / "spec_smoke_result.json").read_text(
        encoding="utf-8")
    assert out.read_text(encoding="utf-8") == golden
