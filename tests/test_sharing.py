"""Unit tests for the §3 resource sharing algorithm."""

import pytest

from repro.accelos.sharing import (Allocation, KernelRequirements,
                                   compute_allocations, thread_imbalance)
from repro.cl import nvidia_k20m, amd_r9_295x2
from repro.errors import SchedulingError


def req(name="k", wg=256, lmem=0, regs=16, groups=1000):
    return KernelRequirements(name, wg, lmem, regs, groups)


def total_threads(allocations):
    return sum(a.threads for a in allocations)


def test_requirements_validate():
    with pytest.raises(SchedulingError):
        req(wg=0)
    with pytest.raises(SchedulingError):
        req(groups=0)


def test_single_kernel_gets_whole_device():
    dev = nvidia_k20m()
    allocs = compute_allocations([req()], dev)
    assert allocs[0].threads <= dev.max_threads
    # saturation should push it to the thread limit (registers permit)
    assert allocs[0].threads == dev.max_threads


def test_equal_kernels_get_equal_shares():
    dev = nvidia_k20m()
    allocs = compute_allocations([req("a"), req("b")], dev)
    assert allocs[0].groups == allocs[1].groups
    assert thread_imbalance(allocs) == 0


def test_thread_constraint_holds():
    dev = nvidia_k20m()
    for k in (2, 4, 8):
        allocs = compute_allocations([req(str(i)) for i in range(k)], dev)
        assert total_threads(allocs) <= dev.max_threads


def test_local_memory_constraint_holds():
    dev = nvidia_k20m()
    allocs = compute_allocations(
        [req("a", lmem=16 * 1024), req("b", lmem=24 * 1024)], dev)
    lmem = sum(a.local_mem for a in allocs)
    assert lmem <= dev.total_local_mem


def test_register_constraint_holds():
    dev = nvidia_k20m()
    allocs = compute_allocations(
        [req("a", regs=120), req("b", regs=100)], dev)
    regs = sum(a.registers for a in allocs)
    assert regs <= dev.total_registers


def test_binding_constraint_is_min_of_three():
    dev = nvidia_k20m()
    # huge local memory per group makes L the binding constraint:
    # y = L / (K * m) = 624K / (2 * 48K) = 6 groups (before saturation)
    heavy = req("lmem-bound", wg=64, lmem=48 * 1024, regs=4)
    allocs = compute_allocations([heavy, req("other")], dev, saturate=False)
    assert allocs[0].groups == dev.total_local_mem // (2 * 48 * 1024)


def test_allocation_never_exceeds_original_groups():
    dev = nvidia_k20m()
    tiny = req("tiny", groups=3)
    allocs = compute_allocations([tiny, req("big")], dev)
    assert allocs[0].groups == 3


def test_saturation_gives_leftovers_to_big_kernels():
    dev = nvidia_k20m()
    tiny = req("tiny", groups=2)
    big = req("big", groups=10_000)
    unsat = compute_allocations([tiny, big], dev, saturate=False)
    sat = compute_allocations([tiny, big], dev, saturate=True)
    assert sat[1].groups > unsat[1].groups
    assert total_threads(sat) <= dev.max_threads


def test_saturation_keeps_constraints():
    dev = amd_r9_295x2()
    reqs = [req(str(i), wg=128 * (1 + i % 3), regs=20 + i, groups=500)
            for i in range(8)]
    allocs = compute_allocations(reqs, dev)
    assert total_threads(allocs) <= dev.max_threads
    assert sum(a.registers for a in allocs) <= dev.total_registers


def test_every_kernel_gets_at_least_one_group():
    dev = nvidia_k20m()
    reqs = [req(str(i)) for i in range(8)]
    allocs = compute_allocations(reqs, dev)
    assert all(a.groups >= 1 for a in allocs)


def test_share_ratio_weights_allocation():
    dev = nvidia_k20m()
    allocs = compute_allocations([req("a"), req("b")], dev,
                                 share_ratio=[3.0, 1.0], saturate=False)
    assert allocs[0].groups > 2 * allocs[1].groups


def test_share_ratio_validation():
    dev = nvidia_k20m()
    with pytest.raises(SchedulingError):
        compute_allocations([req("a")], dev, share_ratio=[1.0, 2.0])
    with pytest.raises(SchedulingError):
        compute_allocations([req("a")], dev, share_ratio=[-1.0])


def test_weighted_saturation_preserves_ratio():
    """§2.2 regression: with ``saturate=True`` the greedy growth must hand
    out leftover capacity by *weight-normalised* share, or it erodes the
    ratio the base allocation just established.  The tiny clamped kernel
    frees capacity, and the two big kernels must absorb it 3:1."""
    dev = nvidia_k20m()
    reqs = [req("a", groups=10_000), req("b", groups=10_000),
            req("tiny", groups=2)]
    weights = [3.0, 1.0, 1.0]
    allocs = compute_allocations(reqs, dev, share_ratio=weights,
                                 saturate=True)
    k = len(reqs)
    norm = [w * k / sum(weights) for w in weights]
    share_a = allocs[0].threads / norm[0]
    share_b = allocs[1].threads / norm[1]
    # within one work-group granule of the requested ratio
    granule = max(reqs[0].wg_threads / norm[0], reqs[1].wg_threads / norm[1])
    assert abs(share_a - share_b) <= granule + 1e-9
    assert total_threads(allocs) <= dev.max_threads


def test_weighted_saturation_uses_all_leftovers():
    dev = nvidia_k20m()
    reqs = [req("a", groups=10_000), req("b", groups=10_000)]
    unsat = compute_allocations(reqs, dev, share_ratio=[3.0, 1.0],
                                saturate=False)
    sat = compute_allocations(reqs, dev, share_ratio=[3.0, 1.0],
                              saturate=True)
    assert total_threads(sat) >= total_threads(unsat)
    # saturation never breaks the device constraint
    assert total_threads(sat) <= dev.max_threads


def test_empty_batch():
    assert compute_allocations([], nvidia_k20m()) == []


def test_formula_matches_paper_for_thread_bound_kernels():
    dev = nvidia_k20m()
    # x_i = T / (K * w_i) when threads are the binding constraint
    reqs = [req("a", wg=256, regs=1), req("b", wg=512, regs=1)]
    allocs = compute_allocations(reqs, dev, saturate=False)
    assert allocs[0].groups == dev.max_threads // (2 * 256)
    assert allocs[1].groups == dev.max_threads // (2 * 512)


def test_allocation_accessors():
    allocation = Allocation(req("a", wg=128, lmem=100, regs=10, groups=50), 4)
    assert allocation.threads == 512
    assert allocation.local_mem == 400
    assert allocation.registers == 4 * 10 * 128
