"""Lazy/eager equivalence goldens: the streaming plane changes memory,
never results.

Three locks:

* every registered scenario's ``iter_arrivals`` yields the bit-identical
  arrival sequence ``generate`` materialises (same RNG draw order, same
  merge order for multi-tenant streams) — and does so lazily;
* the driver's ``build_stream_iter`` is the lazy twin of
  ``build_stream`` for both spec topologies;
* a ``metrics_mode="streaming"`` run of the checked-in CI smoke spec
  reproduces the exact-mode golden (``tests/goldens/spec_smoke_result
  .json``) — ANTT/STP/unfairness to summation-order precision, and the
  percentile metrics too, because the smoke population is far below the
  sketch warm-up buffer where estimates are exact.
"""

import dataclasses
import itertools
import json
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, build_device, run
from repro.api.driver import build_stream, build_stream_iter
from repro.sim import DeviceFleet
from repro.workloads import SCENARIOS, from_name, iter_from_name, scenario

GOLDEN_DIR = Path(__file__).parent / "goldens"

SUMMATION_RTOL = 1e-9  # exact-up-to-summation-order metric agreement


# -- scenario-level lazy/eager equivalence ------------------------------------

@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 7, 2016])
def test_iter_arrivals_bit_identical_to_generate(scenario_name, seed):
    model = scenario(scenario_name)
    rate = 400.0
    eager = model.generate(rate, 64, seed=seed)
    lazy = list(model.iter_arrivals(rate, 64, seed=seed))
    assert lazy == eager
    # bit-identical, not merely equal: timestamps are float-exact
    assert [a.time for a in lazy] == [a.time for a in eager]
    assert [(a.name, a.tenant, a.device) for a in lazy] \
        == [(a.name, a.tenant, a.device) for a in eager]


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_iter_arrivals_is_lazy_and_deterministic(scenario_name):
    model = scenario(scenario_name)
    stream = model.iter_arrivals(300.0, 10**9, seed=1)
    # a 10^9-request stream materialised would hang the test: taking a
    # prefix must be O(prefix)
    prefix = list(itertools.islice(stream, 8))
    assert len(prefix) == 8
    # same seed, fresh iterator => bit-identical prefix (the stream is
    # a pure function of (rate, count, seed), consumed incrementally)
    again = list(itertools.islice(
        model.iter_arrivals(300.0, 10**9, seed=1), 8))
    assert [a.time for a in again] == [a.time for a in prefix]
    assert [(a.name, a.tenant) for a in again] \
        == [(a.name, a.tenant) for a in prefix]


@pytest.mark.parametrize("load", [0.5, 1.5])
def test_iter_from_name_matches_from_name(load):
    for name in sorted(SCENARIOS):
        eager = from_name(name, seed=11, load=load, count=48)
        lazy = list(iter_from_name(name, seed=11, load=load, count=48))
        assert lazy == eager


# -- driver-level lazy/eager equivalence --------------------------------------

def test_build_stream_iter_matches_build_stream_single_device():
    spec = ExperimentSpec(scenario="multi-tenant", schemes=("accelos",),
                          loads=(1.2,), seeds=(3,), count=40)
    device = build_device(spec.devices[0])
    eager = build_stream(spec, 1.2, 3, 0, device=device)
    lazy = list(build_stream_iter(spec, 1.2, 3, 0, device=device))
    assert lazy == eager


def test_build_stream_iter_matches_build_stream_fleet():
    spec = ExperimentSpec(
        scenario="bursty", schemes=("accelos",), loads=(1.0,), seeds=(5,),
        count=40,
        devices=({"id": "a", "base": "nvidia-k20m"},
                 {"id": "b", "base": "nvidia-k20m", "clock_scale": 0.5}),
        placements=("least-loaded",))
    fleet = DeviceFleet([(e.id, build_device(e)) for e in spec.devices])
    eager = build_stream(spec, 1.0, 5, 0, fleet=fleet)
    lazy = list(build_stream_iter(spec, 1.0, 5, 0, fleet=fleet))
    assert lazy == eager


# -- streaming mode vs the checked-in exact golden ----------------------------

def _golden_cells():
    document = json.loads(
        (GOLDEN_DIR / "spec_smoke_result.json").read_text(encoding="utf-8"))
    return {cell["cell"]["scheme"]: cell["metrics"]
            for cell in document["cells"]}


def test_streaming_run_reproduces_exact_smoke_golden():
    spec = ExperimentSpec.from_json(
        (GOLDEN_DIR / "spec_smoke.json").read_text(encoding="utf-8"))
    assert spec.metrics_mode == "exact"  # the golden pins the exact plane
    streaming = run(dataclasses.replace(spec, metrics_mode="streaming"))
    golden = _golden_cells()
    for scheme, expected in golden.items():
        for metric in ("antt", "stp", "unfairness", "mean_queueing_delay"):
            assert streaming.metric(metric, scheme=scheme) \
                == pytest.approx(expected[metric], rel=SUMMATION_RTOL), \
                (scheme, metric)
        # 6 requests sit inside the sketch warm-up buffer: the
        # percentile is exact there too, not a P2 estimate
        assert streaming.metric("p99_slowdown", scheme=scheme) \
            == pytest.approx(expected["p99_slowdown"], rel=SUMMATION_RTOL)


def test_streaming_mode_round_trips_through_spec_json():
    spec = ExperimentSpec(scenario="steady", schemes=("accelos",),
                          loads=(1.0,), seeds=(7,), count=6,
                          metrics_mode="streaming")
    replayed = ExperimentSpec.from_json(spec.to_json())
    assert replayed == spec
    a = run(spec)
    b = run(replayed)
    assert a.antt() == b.antt()
    assert a.p99_slowdown() == b.p99_slowdown()


def test_streaming_fleet_run_matches_exact_metrics():
    base = dict(
        scenario="multi-tenant", schemes=("accelos",), loads=(1.2,),
        seeds=(9,), count=48,
        devices=({"id": "fast", "base": "nvidia-k20m"},
                 {"id": "slow", "base": "nvidia-k20m",
                  "clock_scale": 0.5}),
        placements=("least-loaded", "burst-aware"),
        metrics=("antt", "stp", "unfairness", "p99_slowdown"))
    exact = run(ExperimentSpec(**base))
    streaming = run(ExperimentSpec(metrics_mode="streaming", **base))
    for placement in base["placements"]:
        for metric in ("antt", "stp", "unfairness", "p99_slowdown"):
            assert streaming.metric(metric, placement=placement) \
                == pytest.approx(exact.metric(metric, placement=placement),
                                 rel=SUMMATION_RTOL), (placement, metric)


def test_streaming_rejects_offline_placement_mode():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="closed loop"):
        ExperimentSpec(
            scenario="steady", schemes=("accelos",), count=6,
            devices=({"id": "a", "base": "nvidia-k20m"},
                     {"id": "b", "base": "nvidia-k20m"}),
            placements=("least-loaded",),
            placement_mode="offline", metrics_mode="streaming")
