"""Regression tests for Kernel Scheduler fixes: one ResourceAnalysis pass
per request, and vndrange buffers that live until their launch completes."""

import numpy as np

import repro.accelos.scheduler as scheduler_module
from repro.accelos import AccelOSRuntime
from repro.cl import NDRange, nvidia_k20m
from repro.cl.queue import Event
from repro.kernelc import types as T

SOURCE = """
kernel void scale(global float* a, float factor)
{
    size_t g = get_global_id(0);
    a[g] = a[g] * factor;
}
"""


def _runtime_with_requests(count):
    """An AccelOSRuntime with ``count`` pending kernel execution requests."""
    runtime = AccelOSRuntime(nvidia_k20m())
    handles = []
    for i in range(count):
        app = runtime.session("app{}".format(i))
        program = app.create_program(SOURCE).build()
        kernel = program.create_kernel("scale")
        buf = app.create_buffer(T.FLOAT, 4096)
        queue = app.create_queue()
        queue.enqueue_write_buffer(buf, np.ones(4096, dtype=np.float32))
        kernel.set_args(buf, 2.0)
        queue.enqueue_nd_range(kernel, NDRange((4096,), (256,)))
        handles.append((kernel, buf, queue))
    return runtime, handles


def test_plan_batch_runs_one_resource_analysis_per_request(monkeypatch):
    """plan_batch already derives each request's KernelRequirements; the
    per-plan construction must reuse it instead of re-running the IR pass."""
    real = scheduler_module.ResourceAnalysis
    calls = []

    class Counting(real):
        def __init__(self, *args, **kwargs):
            calls.append(1)
            real.__init__(self, *args, **kwargs)

    monkeypatch.setattr(scheduler_module, "ResourceAnalysis", Counting)
    runtime, _ = _runtime_with_requests(3)
    plans = runtime.drain()
    assert len(plans) == 3
    assert len(calls) == 3  # exactly one IR analysis per request


def test_vndrange_released_after_synchronous_launch():
    runtime, _ = _runtime_with_requests(1)
    free_before = runtime.context.allocator.free_bytes
    plans = runtime.drain()
    # the synchronous queue completes at enqueue, so the vndrange buffer is
    # already gone and device memory is back
    assert plans[0].vndrange.buffer is None
    assert runtime.context.allocator.free_bytes == free_before


def test_vndrange_survives_until_async_event_completes():
    """Use-after-free regression: against an asynchronous queue the
    descriptor buffer must stay live until the launch's event completes."""
    runtime, handles = _runtime_with_requests(1)
    kernel, _, real_queue = handles[0]
    plan = runtime.scheduler.plan_batch([(kernel, NDRange((4096,),
                                                          (256,)))])[0]

    class AsyncQueue:
        def __init__(self, inner):
            self.inner = inner

        def enqueue_nd_range(self, kernel, nd_range):
            self.inner.enqueue_nd_range(kernel, nd_range)
            return Event("ndrange", complete=False)

    event = runtime.scheduler.execute_plan(plan, AsyncQueue(real_queue))
    assert not event.complete
    assert plan.vndrange.buffer is not None  # still live mid-flight
    event.mark_complete()
    assert plan.vndrange.buffer is None      # released on completion


def test_event_completion_callbacks():
    fired = []
    done = Event("x")
    done.on_complete(lambda: fired.append("immediate"))
    assert fired == ["immediate"]

    pending = Event("y", complete=False)
    pending.on_complete(lambda: fired.append("deferred"))
    assert fired == ["immediate"]
    pending.mark_complete()
    assert fired == ["immediate", "deferred"]
    pending.mark_complete()  # idempotent
    assert fired == ["immediate", "deferred"]
