"""Wiring tests for the attribution plane: the ledger rides along with
real runs without changing them, exact and streaming runs agree on the
audit, and attribution stays pay-for-what-you-use end to end."""

import tracemalloc

import pytest

from repro.api import ExperimentSpec, run
from repro.attribution import AttributionLedger
from repro.cl import derated_device, nvidia_k20m
from repro.harness import FleetOpenSystemExperiment, OpenSystemExperiment
from repro.sim import DeviceFleet
from repro.workloads import scenarios

COUNT = 24
SEED = 11
LOAD = 1.2


def device():
    return nvidia_k20m()


def fleet():
    return DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.5)),
    ])


def arrivals(count=COUNT, device_obj=None):
    return scenarios.from_name("multi-tenant", seed=SEED, load=LOAD,
                               count=count,
                               device=device_obj or device())


def record_tuples(records):
    return [(r.name, r.tenant, r.arrival, r.start, r.finish)
            for r in records]


# -- pay-for-what-you-use -------------------------------------------------


def test_attributed_run_changes_nothing_but_the_audit():
    """The same stream with and without a ledger produces identical
    records and metrics — attribution observes, never steers."""
    dev = device()
    stream = arrivals(device_obj=dev)
    plain = OpenSystemExperiment(dev).run(stream, "accelos")
    audited = OpenSystemExperiment(dev).run(
        stream, "accelos", ledger=AttributionLedger([dev.name]))
    assert record_tuples(audited.records) == record_tuples(plain.records)
    assert audited.antt == plain.antt
    assert audited.unfairness == plain.unfairness
    assert not hasattr(plain, "attribution")
    assert audited.attribution.requests == COUNT


def test_attributed_fleet_run_changes_nothing_but_the_audit():
    flt = fleet()
    stream = list(arrivals(device_obj=flt.devices[0]))
    plain = FleetOpenSystemExperiment(fleet()).run(
        stream, "accelos", "least-loaded", mode="online")
    audited = FleetOpenSystemExperiment(flt).run(
        stream, "accelos", "least-loaded", mode="online",
        ledger=AttributionLedger(flt.ids))
    assert record_tuples(audited.overall.records) \
        == record_tuples(plain.overall.records)
    assert audited.overall.antt == plain.overall.antt
    assert audited.attribution.requests == COUNT
    assert audited.attribution.devices == list(flt.ids)


# -- exact and streaming runs agree on the audit --------------------------


def test_single_device_exact_and_streaming_audits_agree():
    dev = device()
    exact_ledger = AttributionLedger([dev.name])
    stream_ledger = AttributionLedger([dev.name])
    exact = OpenSystemExperiment(dev).run(
        arrivals(device_obj=dev), "accelos", ledger=exact_ledger)
    streamed = OpenSystemExperiment(dev).run_stream(
        iter(arrivals(device_obj=dev)), "accelos", ledger=stream_ledger)
    assert exact.attribution.to_dict() == streamed.attribution.to_dict()
    # both population accounts cover the full stream
    observed = exact.attribution.observed
    assert sum(int(o["requests"]) for o in observed.values()) == COUNT


def test_fleet_exact_and_streaming_audits_agree():
    flt = fleet()
    stream = list(arrivals(device_obj=flt.devices[0]))
    exact = FleetOpenSystemExperiment(flt).run(
        stream, "accelos", "least-loaded", mode="online",
        ledger=AttributionLedger(flt.ids))
    flt2 = fleet()
    streamed = FleetOpenSystemExperiment(flt2).run_stream(
        iter(stream), "accelos", "least-loaded", mode="online",
        ledger=AttributionLedger(flt2.ids))
    assert exact.attribution.to_dict() == streamed.attribution.to_dict()


def test_observed_population_matches_ledger_work_accounts():
    """The sink-hook cross-check: per-tenant completed counts and
    queueing totals seen by observe_record match the event-ledger's own
    work accounts."""
    dev = device()
    ledger = AttributionLedger([dev.name])
    OpenSystemExperiment(dev).run(arrivals(device_obj=dev), "accelos",
                                  ledger=ledger)
    report = ledger.report()
    for tenant in report.tenants:
        assert report.observed[tenant]["requests"] \
            == report.work[tenant]["requests"]
        assert report.observed[tenant]["queueing_seconds"] \
            == pytest.approx(report.work[tenant]["queueing_seconds"])


# -- the declarative surface ----------------------------------------------


def test_spec_attribution_defaults_off_and_separates_cache_keys():
    plain = ExperimentSpec()
    audited = ExperimentSpec(attribution=True)
    assert plain.attribution is False
    assert plain.cell_inputs()["attribution"] is False
    assert audited.cell_inputs()["attribution"] is True
    assert plain.cell_inputs() != audited.cell_inputs()


def test_old_spec_json_round_trips_with_attribution_off():
    """A spec serialised before the attribution field existed must load
    with the audit off — old experiment files stay valid."""
    old = ExperimentSpec(count=8).to_dict()
    del old["attribution"]
    spec = ExperimentSpec.from_dict(old)
    assert spec.attribution is False
    assert spec.to_dict()["attribution"] is False


def test_driver_attaches_audit_only_when_asked():
    spec = ExperimentSpec(
        scenario="multi-tenant", schemes=("accelos",), loads=(LOAD,),
        seeds=(SEED,), count=12, attribution=True,
        metrics=("antt", "tenant_occupancy"))
    audited = run(spec).get(scheme="accelos")
    assert audited.attribution.requests == 12
    plain_spec = ExperimentSpec(
        scenario="multi-tenant", schemes=("accelos",), loads=(LOAD,),
        seeds=(SEED,), count=12, metrics=("antt",))
    plain = run(plain_spec).get(scheme="accelos")
    assert not hasattr(plain, "attribution")


def test_attribution_metrics_require_the_flag():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="attribution"):
        ExperimentSpec(metrics=("antt", "tenant_occupancy"))
    with pytest.raises(SimulationError, match="closed loop"):
        ExperimentSpec(devices=({"id": "a", "base": "nvidia-k20m"},
                                {"id": "b", "base": "nvidia-k20m"}),
                       placements=("round-robin",),
                       placement_mode="offline", attribution=True)


# -- the memory bound -----------------------------------------------------


def synthetic_events(ledger, count):
    """Drive ``count`` requests from 3 tenants over the ledger's devices
    with a bounded in-flight population (the streaming regime)."""
    devices = len(ledger.device_ids)
    for i in range(count):
        tenant = ("batch", "interactive", "background")[i % 3]
        ledger.submit(i, "k", tenant, i % devices, float(i), 1.0)
        if i >= 4:                        # keep <= 4 outstanding
            ledger.finish(i - 4, float(i), i + 1.0)
    for i in range(max(0, count - 4), count):
        ledger.finish(i, float(count), count + 1.0)


def measured_ledger_peak(count):
    tracemalloc.start()
    try:
        ledger = AttributionLedger(["d0", "d1"],
                                   footprint=lambda name: 64)
        synthetic_events(ledger, count)
        report = ledger.report()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert report.requests == count
    return peak


def test_ledger_memory_is_bounded_not_linear():
    """O(#tenants·#devices) accounting: 8x the requests must not cost
    meaningfully more memory (sketches and cells, never the stream)."""
    small = measured_ledger_peak(1_000)
    large = measured_ledger_peak(8_000)
    assert large < small * 2.0, (small, large)
    assert large < 4 * 1024 * 1024, large


def test_ledger_state_cells_stay_constant_through_a_real_run():
    """state_cells() — the cell-count witness — is identical after a
    12-request and a 24-request run of the same scenario."""
    sizes = []
    for count in (12, 24):
        dev = device()
        ledger = AttributionLedger([dev.name])
        OpenSystemExperiment(dev).run(
            arrivals(count=count, device_obj=dev), "accelos",
            ledger=ledger)
        sizes.append(ledger.state_cells())
    assert sizes[0] == sizes[1]
