"""Tests for the continuous-arrival (open-system) scheduling subsystem."""

import numpy as np
import pytest

from repro.cl import nvidia_k20m
from repro.errors import SimulationError
from repro.harness.open_system import (OpenSystemExperiment,
                                       arrival_rate_for_load,
                                       sharing_allocator)
from repro.sim import ExecutionMode, GPUSimulator, KernelExecSpec
from repro.sim.gpu import KERNEL_HANDOFF_LATENCY
from repro.sim.resources import max_resident_groups
from repro.workloads import (PROFILE_NAMES, poisson_arrivals,
                             periodic_arrivals, trace_arrivals)


def spec(name, n, cost, wg=256, sat=0.5, arrival=0.0):
    return KernelExecSpec(name, wg, np.full(n, cost), 0.0, 16, 0,
                          sat_occupancy=sat, arrival_time=arrival)


def accel(base, groups, chunk=1):
    return base.with_mode(ExecutionMode.ACCELOS, physical_groups=groups,
                          chunk=chunk)


# -- arrival generators ------------------------------------------------------

def test_poisson_arrivals_deterministic():
    a = poisson_arrivals(100.0, 50, seed=42)
    b = poisson_arrivals(100.0, 50, seed=42)
    assert a == b


def test_poisson_arrivals_seed_changes_stream():
    a = poisson_arrivals(100.0, 50, seed=1)
    b = poisson_arrivals(100.0, 50, seed=2)
    assert a != b


def test_poisson_arrivals_are_monotonic_and_from_pool():
    names = ("bfs", "sgemm")
    stream = poisson_arrivals(50.0, 40, seed=0, names=names)
    assert len(stream) == 40
    times = [a.time for a in stream]
    assert times == sorted(times)
    assert all(t > 0 for t in times)
    assert set(a.name for a in stream) <= set(names)


def test_poisson_arrivals_default_pool_is_corpus():
    stream = poisson_arrivals(200.0, 200, seed=3)
    assert set(a.name for a in stream) <= set(PROFILE_NAMES)


def test_poisson_arrivals_validation():
    with pytest.raises(SimulationError):
        poisson_arrivals(0.0, 10)
    with pytest.raises(SimulationError):
        poisson_arrivals(1.0, 0)
    with pytest.raises(SimulationError):
        poisson_arrivals(1.0, 10, names=())


def test_periodic_arrivals_round_robin():
    stream = periodic_arrivals(0.5, 5, names=("a", "b"))
    assert [a.name for a in stream] == ["a", "b", "a", "b", "a"]
    assert [a.time for a in stream] == [0.0, 0.5, 1.0, 1.5, 2.0]


def test_trace_arrivals_sorted():
    stream = trace_arrivals([("b", 2.0), ("a", 1.0)])
    assert [a.name for a in stream] == ["a", "b"]
    with pytest.raises(SimulationError):
        trace_arrivals([])
    with pytest.raises(SimulationError):
        trace_arrivals([("a", -1.0)])


# -- spec / API plumbing -----------------------------------------------------

def test_spec_rejects_negative_arrival():
    with pytest.raises(SimulationError):
        spec("k", 4, 1e-4, arrival=-1.0)


def test_with_arrival_preserves_everything_else():
    base = spec("k", 8, 1e-4)
    late = base.with_arrival(0.25)
    assert late.arrival_time == 0.25
    assert late.name == base.name
    assert late.total_groups == base.total_groups
    assert base.arrival_time == 0.0  # original untouched


def test_closed_run_rejects_arrival_times():
    device = nvidia_k20m()
    with pytest.raises(SimulationError, match="run_open"):
        GPUSimulator(device).run([spec("k", 4, 1e-4, arrival=0.5)])


def test_run_open_rejects_elastic():
    device = nvidia_k20m()
    elastic = spec("k", 4, 1e-4).with_mode(ExecutionMode.ELASTIC,
                                           physical_groups=2)
    with pytest.raises(SimulationError, match="merged launch"):
        GPUSimulator(device).run_open([elastic])


def test_run_open_accelos_requires_allocator():
    device = nvidia_k20m()
    with pytest.raises(SimulationError, match="allocator"):
        GPUSimulator(device).run_open([accel(spec("k", 4, 1e-4), 2)])


def test_allocator_length_mismatch_raises():
    device = nvidia_k20m()
    bad = lambda specs: [1] * (len(specs) + 1)
    with pytest.raises(SimulationError, match="allocator returned"):
        GPUSimulator(device).run_open([accel(spec("k", 16, 1e-4), 2)],
                                      allocator=bad)


# -- hardware (firmware scheduler) open system -------------------------------

def test_hw_open_single_late_arrival():
    device = nvidia_k20m()
    trace = GPUSimulator(device).run_open([spec("k", 64, 50e-6,
                                                arrival=0.5)])
    iv = trace.intervals[0]
    assert iv.arrival == 0.5
    assert iv.start >= 0.5
    assert iv.turnaround == pytest.approx(iv.finish - 0.5)
    assert iv.queueing_delay >= 0.0


def test_hw_open_matches_closed_batch_at_t0():
    device = nvidia_k20m()
    specs = [spec("a", 256, 100e-6), spec("b", 128, 80e-6)]
    closed = GPUSimulator(device).run(specs)
    opened = GPUSimulator(device).run_open(specs)
    assert opened.turnarounds == closed.turnarounds
    assert opened.makespan == closed.makespan


def test_hw_open_fifo_queues_behind_long_kernel():
    device = nvidia_k20m()
    long_kernel = spec("long", 2048, 100e-6)
    late = spec("late", 16, 50e-6, arrival=1e-4)
    trace = GPUSimulator(device).run_open([long_kernel, late])
    iv = trace.intervals[1]
    # the firmware dispatches in arrival order: the late kernel waits for
    # the long one's grid to drain, far beyond the handoff latency
    assert iv.queueing_delay > 10 * KERNEL_HANDOFF_LATENCY
    assert iv.start >= trace.intervals[0].dispatch_done


def test_hw_open_idle_gap_restarts_promptly():
    device = nvidia_k20m()
    first = spec("first", 16, 50e-6)
    second = spec("second", 16, 50e-6, arrival=0.2)  # device long idle
    trace = GPUSimulator(device).run_open([first, second])
    assert trace.intervals[0].finish < 0.2
    iv = trace.intervals[1]
    assert iv.queueing_delay <= KERNEL_HANDOFF_LATENCY + 1e-9


def test_hw_open_deterministic():
    device = nvidia_k20m()
    specs = [spec("a", 200, 90e-6), spec("b", 64, 60e-6, arrival=3e-3),
             spec("c", 32, 40e-6, arrival=5e-3)]
    t1 = GPUSimulator(device).run_open(specs)
    t2 = GPUSimulator(device).run_open(specs)
    assert [(iv.start, iv.finish) for iv in t1.intervals] \
        == [(iv.start, iv.finish) for iv in t2.intervals]


# -- accelOS open system (continuous re-allocation) --------------------------

def test_accelos_open_conserves_work():
    device = nvidia_k20m()
    specs = [accel(spec("a", 300, 80e-6), 4),
             accel(spec("b", 150, 60e-6, arrival=2e-3), 4),
             accel(spec("c", 80, 40e-6, arrival=4e-3), 4)]
    sim = GPUSimulator(device)
    trace = sim.run_open(specs, allocator=sharing_allocator(device))
    for run in sim.runs:
        assert run.completed == run.total
        assert run.resident == 0
        assert run.live_slots == 0
    for iv in trace.intervals:
        assert iv.start >= iv.arrival
        assert iv.finish > iv.start


def test_accelos_open_regrows_after_completion():
    """When a co-runner finishes, re-allocation hands its share to the
    survivor — the open-system generalisation of the rebalance hook."""
    device = nvidia_k20m()
    long_base = spec("long", 2048, 100e-6)
    short_base = spec("short", 32, 50e-6)
    cap = max_resident_groups(long_base, device)
    # closed batch, allocations bound for the kernels' lifetimes (paper)
    bound = GPUSimulator(device, rebalance=False).run(
        [accel(long_base, cap // 2), accel(short_base, cap // 2)])
    # open system: the same pair, re-allocated on every completion
    t_open = GPUSimulator(device).run_open(
        [accel(long_base, cap // 2), accel(short_base, cap // 2)],
        allocator=sharing_allocator(device))
    assert t_open.turnarounds[0] < bound.turnarounds[0] * 0.85


def test_accelos_open_shrinks_for_new_arrival():
    """A sole kernel owns the device; when a second request arrives the
    re-allocation shrinks the first at chunk boundaries so the newcomer is
    served promptly rather than waiting for a full drain."""
    device = nvidia_k20m()
    first = accel(spec("first", 4096, 100e-6), 1)
    second_base = spec("second", 256, 100e-6)
    arrival = 1e-3  # well inside the first kernel's run
    second = accel(second_base.with_arrival(arrival), 1)
    trace = GPUSimulator(device).run_open(
        [first, second], allocator=sharing_allocator(device))
    first_iv, second_iv = trace.intervals
    assert first_iv.finish > arrival  # genuinely overlapping
    # the newcomer is dispatched long before the first kernel finishes
    assert second_iv.start < first_iv.finish * 0.5
    # and its slowdown stays in the same ballpark as the incumbent's
    iso_first = GPUSimulator(device).run([spec("first", 4096,
                                               100e-6)]).makespan
    iso_second = GPUSimulator(device).run([spec("second", 256,
                                                100e-6)]).makespan
    s_first = first_iv.turnaround / iso_first
    s_second = second_iv.turnaround / iso_second
    assert max(s_first, s_second) / min(s_first, s_second) < 3.0


def test_accelos_open_burst_waits_for_admission():
    """A burst larger than the device's minimum-allocation capacity must
    queue (real queueing delay), not crash the sharing algorithm."""
    device = nvidia_k20m()
    # 27 x 1024-thread kernels: one group each already exceeds max_threads
    specs = [accel(spec("k{}".format(i), 32, 80e-6, wg=1024,
                        arrival=i * 1e-6), 1)
             for i in range(27)]
    sim = GPUSimulator(device)
    trace = sim.run_open(specs, allocator=sharing_allocator(device))
    for run in sim.runs:
        assert run.completed == run.total
        assert run.resident == 0
    # the head of the burst starts immediately; the tail genuinely waited
    # for completions to free admission capacity
    delays = [iv.queueing_delay for iv in trace.intervals]
    assert delays[0] == 0.0
    assert delays[-1] > delays[0]
    assert max(delays) > 0


def test_periodic_arrivals_empty_pool():
    with pytest.raises(SimulationError):
        periodic_arrivals(1.0, 3, names=())


def test_accelos_open_deterministic():
    device = nvidia_k20m()
    specs = [accel(spec("a", 400, 70e-6), 2),
             accel(spec("b", 100, 50e-6, arrival=1e-3), 2)]
    allocator = sharing_allocator(device)
    t1 = GPUSimulator(device).run_open(specs, allocator=allocator)
    t2 = GPUSimulator(device).run_open(specs, allocator=allocator)
    assert [(iv.start, iv.finish) for iv in t1.intervals] \
        == [(iv.start, iv.finish) for iv in t2.intervals]


# -- the OpenSystemExperiment harness ----------------------------------------

def test_arrival_rate_for_load():
    device = nvidia_k20m()
    low = arrival_rate_for_load(0.5, device, names=("bfs", "sgemm"))
    high = arrival_rate_for_load(2.0, device, names=("bfs", "sgemm"))
    assert 0 < low < high
    assert high == pytest.approx(4 * low)
    with pytest.raises(SimulationError):
        arrival_rate_for_load(0.0, device)


def test_open_experiment_records_follow_submission_order():
    device = nvidia_k20m()
    arrivals = poisson_arrivals(
        arrival_rate_for_load(0.8, device, names=("bfs", "stencil", "spmv")),
        8, seed=5, names=("bfs", "stencil", "spmv"))
    experiment = OpenSystemExperiment(device)
    for scheme in ("baseline", "ek", "accelos"):
        result = experiment.run(arrivals, scheme)
        assert len(result.records) == len(arrivals)
        for record, arrival in zip(result.records, arrivals):
            assert record.name == arrival.name
            assert record.arrival == arrival.time
            assert record.queueing_delay >= -1e-12
            assert record.slowdown > 0
        assert result.unfairness >= 1.0
        assert result.stp > 0
        assert result.request_throughput > 0


def test_open_experiment_accelos_fairer_under_load():
    device = nvidia_k20m()
    arrivals = poisson_arrivals(arrival_rate_for_load(1.0, device),
                                24, seed=3)
    results = OpenSystemExperiment(device).run_all(arrivals)
    assert results["accelos"].unfairness < results["baseline"].unfairness
    assert results["accelos"].antt < results["baseline"].antt


def test_ek_serialises_arrivals_accelos_overlaps():
    device = nvidia_k20m()
    # the second request arrives while the first is still running; both
    # would fit the device together
    arrivals = trace_arrivals([("histo_prescan", 0.0),
                               ("sad_larger_calc_8", 1e-4)])
    experiment = OpenSystemExperiment(device)
    ek = experiment.run(arrivals, "ek").records
    # EK's merge is static: the late request waits for the running launch
    assert ek[1].start >= ek[0].finish - 1e-12
    acc = experiment.run(arrivals, "accelos").records
    # accelOS re-allocates on arrival: the late request co-executes
    assert acc[1].start < acc[0].finish


def test_open_experiment_deterministic():
    device = nvidia_k20m()
    arrivals = poisson_arrivals(arrival_rate_for_load(1.0, device),
                                12, seed=9)
    experiment = OpenSystemExperiment(device)
    first = experiment.run_all(arrivals)
    second = experiment.run_all(poisson_arrivals(
        arrival_rate_for_load(1.0, device), 12, seed=9))
    for scheme, result in first.items():
        again = second[scheme]
        assert [r.finish for r in again.records] \
            == [r.finish for r in result.records]
        assert again.unfairness == result.unfairness
        assert again.mean_queueing_delay == result.mean_queueing_delay


def test_open_experiment_rejects_bad_input():
    device = nvidia_k20m()
    experiment = OpenSystemExperiment(device)
    with pytest.raises(SimulationError):
        experiment.run([], "accelos")
    with pytest.raises(SimulationError, match="unknown scheme"):
        experiment.run(poisson_arrivals(10.0, 2), "warp")
