"""Unit tests for the host runtime: monitor FSM, ProxyCL, memory manager."""

import numpy as np
import pytest

from repro.accelos import AccelOSRuntime
from repro.accelos.memory_manager import MemoryManager
from repro.accelos.monitor import (ApplicationMonitor, MonitorState, Request)
from repro.cl import Context, NDRange, nvidia_k20m
from repro.errors import CLError
from repro.kernelc import types as T

SOURCE = """
kernel void scale(global float* a, float factor)
{
    size_t g = get_global_id(0);
    a[g] = a[g] * factor;
}
"""


def test_monitor_routes_program_requests():
    seen = []
    monitor = ApplicationMonitor(lambda r: seen.append(("jit", r)) or "P",
                                 lambda r: seen.append(("exec", r)))
    out = monitor.handle(Request(Request.PROGRAM, "src", "app"))
    assert out == "P"
    assert seen[0][0] == "jit"


def test_monitor_routes_exec_requests():
    seen = []
    monitor = ApplicationMonitor(lambda r: None,
                                 lambda r: seen.append("exec"))
    monitor.handle(Request(Request.KERNEL_EXEC, None, "app"))
    assert seen == ["exec"]


def test_monitor_passthrough_for_other_requests():
    monitor = ApplicationMonitor(lambda r: 1 / 0, lambda r: 1 / 0)
    assert monitor.handle(Request(Request.OTHER, "x", "app")) is None


def test_monitor_fsm_returns_to_idle():
    monitor = ApplicationMonitor(lambda r: None, lambda r: None)
    monitor.handle(Request(Request.PROGRAM, "s", "app"))
    assert monitor.state == MonitorState.IDLE
    states = [t[2] for t in monitor.transitions]
    assert MonitorState.JIT in states
    assert states[-1] == MonitorState.IDLE


def test_runtime_transparent_execution():
    runtime = AccelOSRuntime(nvidia_k20m())
    app = runtime.session("app0")
    program = app.create_program(SOURCE).build()
    kernel = program.create_kernel("scale")
    buf = app.create_buffer(T.FLOAT, 64)
    queue = app.create_queue()
    queue.enqueue_write_buffer(buf, np.ones(64, dtype=np.float32))
    kernel.set_args(buf, 3.0)
    queue.enqueue_nd_range(kernel, NDRange((64,), (16,)))
    plans = runtime.drain()
    assert len(plans) == 1
    assert plans[0].kernel.name == "scale"
    assert (queue.enqueue_read_buffer(buf) == 3.0).all()


def test_runtime_batches_concurrent_requests():
    runtime = AccelOSRuntime(nvidia_k20m())
    kernels = []
    for i in range(3):
        app = runtime.session("app{}".format(i))
        program = app.create_program(SOURCE).build()
        kernel = program.create_kernel("scale")
        buf = app.create_buffer(T.FLOAT, 4096)
        queue = app.create_queue()
        queue.enqueue_write_buffer(buf, np.ones(4096, dtype=np.float32))
        kernel.set_args(buf, float(i + 2))
        queue.enqueue_nd_range(kernel, NDRange((4096,), (256,)))
        kernels.append((kernel, buf, queue, i))
    plans = runtime.drain()
    assert len(plans) == 3
    # the sharing algorithm reduced each kernel's physical footprint
    for plan in plans:
        assert plan.physical_groups <= plan.nd_range.num_groups
    total_threads = sum(
        p.physical_groups * p.requirements.wg_threads for p in plans)
    assert total_threads <= runtime.context.device.max_threads
    for kernel, buf, queue, i in kernels:
        assert (queue.enqueue_read_buffer(buf) == float(i + 2)).all()


def test_runtime_equal_shares_for_equal_kernels():
    runtime = AccelOSRuntime(nvidia_k20m())
    plans = []
    for i in range(2):
        app = runtime.session("app{}".format(i))
        program = app.create_program(SOURCE).build()
        kernel = program.create_kernel("scale")
        buf = app.create_buffer(T.FLOAT, 8192)
        queue = app.create_queue()
        kernel.set_args(buf, 1.0)
        queue.enqueue_nd_range(kernel, NDRange((8192,), (256,)))
    plans = runtime.drain()
    assert plans[0].physical_groups == plans[1].physical_groups


def test_launch_history_accumulates():
    runtime = AccelOSRuntime(nvidia_k20m())
    app = runtime.session("a")
    program = app.create_program(SOURCE).build()
    kernel = program.create_kernel("scale")
    buf = app.create_buffer(T.FLOAT, 64)
    queue = app.create_queue()
    kernel.set_args(buf, 1.0)
    queue.enqueue_nd_range(kernel, NDRange((64,), (16,)))
    queue.finish()
    queue.enqueue_nd_range(kernel, NDRange((64,), (16,)))
    queue.finish()
    assert len(runtime.launch_history) == 2


def test_memory_manager_pauses_on_pressure():
    device = nvidia_k20m()
    context = Context(device)
    manager = MemoryManager(context)
    cap = device.global_mem_bytes
    big = manager.allocate("app0", T.FLOAT, cap // 4 - 1024, "big")
    assert big is not None
    # second application cannot fit: it gets paused
    too_big = manager.allocate("app1", T.FLOAT, cap // 4 - 1024, "big2")
    assert too_big is None
    assert manager.is_paused("app1")
    # releasing app0's buffer resumes app1's allocation
    manager.release("app0", big)
    assert not manager.is_paused("app1")
    granted = manager.claim("app1")
    assert len(granted) == 1


def test_memory_manager_usage_accounting():
    context = Context(nvidia_k20m())
    manager = MemoryManager(context)
    manager.allocate("a", T.FLOAT, 256)
    manager.allocate("a", T.INT, 128)
    assert manager.app_usage("a") == 256 * 4 + 128 * 4
    manager.release_all("a")
    assert manager.app_usage("a") == 0


def test_proxycl_raises_when_paused():
    device = nvidia_k20m()
    runtime = AccelOSRuntime(device)
    app0 = runtime.session("app0")
    app0.create_buffer(T.FLOAT, device.global_mem_bytes // 4 - 1024)
    app1 = runtime.session("app1")
    with pytest.raises(CLError, match="paused"):
        app1.create_buffer(T.FLOAT, device.global_mem_bytes // 4 - 1024)


def test_scheduler_rejects_untransformed_kernel():
    from repro.accelos.scheduler import KernelScheduler
    from repro.errors import SchedulingError
    context = Context(nvidia_k20m())
    program = context.create_program(SOURCE).build()  # no accelOS hook
    kernel = program.create_kernel("scale")
    scheduler = KernelScheduler(context)
    with pytest.raises(SchedulingError, match="not transformed"):
        scheduler.requirements_for(kernel, NDRange((64,), (16,)))
