"""Unit tests for the optimisation passes."""


from repro.ir import compile_source, verify_module
from repro.ir.arith import eval_binop
from repro.ir.passes import (ConstantFoldPass, DeadCodeEliminationPass,
                             InlinePass, PassManager, ResourceAnalysis,
                             count_instructions,
                             count_kernel_instructions, standard_pipeline)
from repro.ir.passes.constfold import fold_binop, fold_cast, fold_cmp
from repro.ir.values import Constant
from repro.kernelc import types as T


def count_ops(func, opcode):
    return sum(1 for insn in func.instructions() if insn.opcode == opcode)


def test_constfold_folds_arithmetic():
    module = compile_source("""
        kernel void f(global int* a) { a[0] = 2 + 3 * 4; }
    """, optimize=False)
    ConstantFoldPass().run_on_function(module.get("f"), module)
    assert count_ops(module.get("f"), "binop") == 0


def test_constfold_preserves_division_by_zero():
    module = compile_source("""
        kernel void f(global int* a) { a[0] = 7 / (3 - 3); }
    """, optimize=False)
    standard_pipeline().run(module)
    # at least one binop (the division) must survive to trap at run time
    assert count_ops(module.get("f"), "binop") >= 1


def test_fold_binop_signed_division_truncates():
    out = fold_binop("div", Constant(T.INT, -7), Constant(T.INT, 2), T.INT)
    assert out.value == -3


def test_fold_binop_wraps_to_width():
    out = fold_binop("add", Constant(T.INT, 2**31 - 1), Constant(T.INT, 1),
                     T.INT)
    assert out.value == -(2**31)


def test_fold_binop_unsigned_wrap():
    out = fold_binop("sub", Constant(T.UINT, 0), Constant(T.UINT, 1), T.UINT)
    assert out.value == 2**32 - 1


def test_fold_matches_interpreter_semantics():
    cases = [
        ("add", 2**31 - 1, 5, T.INT), ("mul", 123456, 7890, T.INT),
        ("shl", 3, 40, T.LONG), ("shr", -16, 2, T.INT),
        ("rem", -7, 3, T.INT), ("div", 9, -2, T.INT),
        ("xor", 0xff, 0x0f, T.UINT),
    ]
    for op, a, b, ty in cases:
        folded = fold_binop(op, Constant(ty, a), Constant(ty, b), ty)
        assert folded.value == eval_binop(op, a, b, ty)


def test_fold_cmp():
    assert fold_cmp("lt", Constant(T.INT, 1), Constant(T.INT, 2)).value is True
    assert fold_cmp("ge", Constant(T.INT, 1), Constant(T.INT, 2)).value is False


def test_fold_cast_truncates():
    out = fold_cast(Constant(T.LONG, 2**33 + 5), T.INT)
    assert out.value == 5


def test_dce_removes_unused_load():
    module = compile_source("""
        kernel void f(global int* a) { int unused = a[3]; a[0] = 1; }
    """, optimize=False)
    func = module.get("f")
    before = count_ops(func, "load")
    PassManager().add(DeadCodeEliminationPass()).run(module)
    assert count_ops(func, "load") < before
    verify_module(module)


def test_dce_keeps_stores_and_atomics():
    module = compile_source("""
        kernel void f(global int* a) { atomic_add(&a[0], 1); a[1] = 2; }
    """, optimize=False)
    func = module.get("f")
    PassManager().add(DeadCodeEliminationPass()).run(module)
    assert count_ops(func, "atomicrmw") == 1
    assert count_ops(func, "store") >= 1


def test_simplifycfg_folds_constant_branch():
    module = compile_source("""
        kernel void f(global int* a) { if (1) a[0] = 1; else a[0] = 2; }
    """, optimize=False)
    standard_pipeline().run(module)
    func = module.get("f")
    assert count_ops(func, "condbr") == 0
    verify_module(module)


def test_simplifycfg_removes_unreachable_blocks():
    module = compile_source("""
        kernel void f(global int* a) {
            a[0] = 1;
            return;
        }
    """, optimize=False)
    before = len(module.get("f").blocks)
    standard_pipeline().run(module)
    assert len(module.get("f").blocks) <= before
    verify_module(module)


def test_inliner_removes_direct_calls():
    module = compile_source("""
        float helper(float x) { return x * 2.0f; }
        kernel void f(global float* a) { a[0] = helper(a[1]) + helper(a[2]); }
    """)
    PassManager().add(InlinePass()).run(module)
    func = module.get("f")
    direct = [i for i in func.instructions()
              if i.opcode == "call" and not i.is_intrinsic()]
    assert direct == []
    verify_module(module)


def test_inliner_handles_nested_calls():
    module = compile_source("""
        float inner(float x) { return x + 1.0f; }
        float outer(float x) { return inner(x) * 2.0f; }
        kernel void f(global float* a) { a[0] = outer(a[1]); }
    """)
    PassManager().add(InlinePass()).run(module)
    for func in module.functions.values():
        for insn in func.instructions():
            assert not (insn.opcode == "call" and not insn.is_intrinsic())
    verify_module(module)


def test_inlined_module_computes_same_result():
    import numpy as np
    from repro.interp import KernelLauncher
    from repro.interp.memory import alloc_buffer

    source = """
        float poly(float x, float c) { return x * x + c * x + 1.0f; }
        kernel void f(global float* a, global float* out) {
            int gid = (int)get_global_id(0);
            out[gid] = poly(a[gid], 3.0f);
        }
    """
    module = compile_source(source)
    inlined = compile_source(source)
    PassManager().add(InlinePass()).run(inlined)

    data = np.linspace(-2, 2, 64, dtype=np.float32)
    results = []
    for mod in (module, inlined):
        a = alloc_buffer(T.FLOAT, 64)
        a.region.fill_from(data)
        out = alloc_buffer(T.FLOAT, 64)
        KernelLauncher(mod).launch("f", [a, out], (64,), (16,))
        results.append(out.region.to_array(np.float32, 64))
    np.testing.assert_array_equal(results[0], results[1])


def test_resource_analysis_counts_local_memory():
    module = compile_source("""
        kernel void f(global float* a) {
            local float tile[32];
            local int flags[8];
            tile[get_local_id(0)] = a[0];
            flags[0] = 1;
            barrier(CLK_LOCAL_MEM_FENCE);
            a[0] = tile[0] + (float)flags[0];
        }
    """)
    usage = ResourceAnalysis().analyze(module.get("f"))
    assert usage.local_memory_bytes == 32 * 4 + 8 * 4


def test_resource_analysis_local_pointer_args():
    module = compile_source("""
        kernel void f(global float* a, local float* scratch) {
            scratch[get_local_id(0)] = a[0];
        }
    """)
    usage = ResourceAnalysis({"scratch": 256}).analyze(module.get("f"))
    assert usage.local_memory_bytes == 256


def test_register_estimate_grows_with_live_values():
    small = compile_source("kernel void f(global int* a) { a[0] = 1; }")
    big = compile_source("""
        kernel void f(global float* a) {
            float x0 = a[0]; float x1 = a[1]; float x2 = a[2];
            float x3 = a[3]; float x4 = a[4]; float x5 = a[5];
            a[6] = x0 + x1 + x2 + x3 + x4 + x5;
        }
    """)
    small_regs = ResourceAnalysis().analyze(small.get("f")).registers
    big_regs = ResourceAnalysis().analyze(big.get("f")).registers
    assert big_regs > small_regs


def test_count_instructions_skips_allocas():
    module = compile_source("""
        kernel void f(global int* a) { int x = 1; int y = 2; a[0] = x + y; }
    """, optimize=False)
    func = module.get("f")
    with_allocas = count_instructions(func, include_allocas=True)
    without = count_instructions(func)
    assert with_allocas > without


def test_count_kernel_instructions_follows_calls():
    module = compile_source("""
        float h(float x) { return x * 2.0f; }
        kernel void f(global float* a) { a[0] = h(a[1]); }
    """, optimize=False)
    total = count_kernel_instructions(module, "f")
    assert total > count_instructions(module.get("f"))


def test_standard_pipeline_reaches_fixed_point():
    module = compile_source("""
        kernel void f(global int* a) {
            int x = 2 * 3;
            if (x == 6) a[0] = x; else a[0] = 0;
        }
    """, optimize=False)
    pm = standard_pipeline()
    pm.run(module)
    changed_again = pm.run(module)
    assert not changed_again
    verify_module(module)
