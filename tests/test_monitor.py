"""Application Monitor coverage (§5 fig. 6): FSM dispatch, the per-app
request counters, and their agreement with the attribution ledger's
per-tenant work accounts over a shared run."""

import pytest

from repro.accelos.monitor import ApplicationMonitor, MonitorState, Request
from repro.attribution import AttributionLedger
from repro.cl import nvidia_k20m
from repro.harness import OpenSystemExperiment
from repro.workloads import scenarios


def monitor(jit=None, execute=None):
    return ApplicationMonitor(jit or (lambda r: ("jit", r.payload)),
                              execute or (lambda r: ("exec", r.payload)))


def test_fsm_routes_and_returns_to_idle():
    mon = monitor()
    assert mon.handle(Request(Request.PROGRAM, "src", "a")) == ("jit", "src")
    assert mon.handle(Request(Request.KERNEL_EXEC, "k", "a")) == ("exec", "k")
    assert mon.handle(Request(Request.OTHER, None, "a")) is None
    assert mon.state == MonitorState.IDLE
    visited = [to_state for _, kind, to_state in mon.transitions
               if kind != "done"]
    assert visited == [MonitorState.JIT, MonitorState.SCHEDULER,
                       MonitorState.PASSTHROUGH]


def test_counters_track_every_request_per_app():
    mon = monitor()
    mon.handle(Request(Request.PROGRAM, None, "b"))
    mon.handle(Request(Request.KERNEL_EXEC, None, "a"))
    mon.handle(Request(Request.KERNEL_EXEC, None, "a"))
    mon.handle(Request(Request.OTHER, None, "a"))
    totals = mon.work_totals()
    assert list(totals) == ["a", "b"]          # sorted app ids
    assert totals["a"] == {Request.KERNEL_EXEC: 2, Request.OTHER: 1}
    assert totals["b"] == {Request.PROGRAM: 1}
    assert mon.kernel_execs("a") == 2
    assert mon.kernel_execs("missing") == 0


def test_counters_survive_handler_failure():
    """The count records that the request *arrived* — a failing handler
    must not leave the books understated."""
    def explode(request):
        raise RuntimeError("scheduler rejected")

    mon = monitor(execute=explode)
    with pytest.raises(RuntimeError):
        mon.handle(Request(Request.KERNEL_EXEC, None, "a"))
    assert mon.kernel_execs("a") == 1
    assert mon.state == MonitorState.IDLE      # FSM recovered


def test_monitor_counters_agree_with_attribution_ledger():
    """One shared run, two accountants: every completed request replayed
    through the monitor as its tenant's kernel-exec must reproduce the
    ledger's per-tenant request totals exactly."""
    device = nvidia_k20m()
    ledger = AttributionLedger([device.name])
    stream = scenarios.from_name("multi-tenant", seed=3, load=1.1,
                                 count=18, device=device)
    result = OpenSystemExperiment(device).run(stream, "accelos",
                                              ledger=ledger)

    mon = monitor()
    for record in result.records:
        mon.handle(Request(Request.KERNEL_EXEC, record.name,
                           app_id=record.tenant))

    report = result.attribution
    totals = mon.work_totals()
    assert sorted(totals, key=str) == report.tenants
    for tenant in report.tenants:
        assert mon.kernel_execs(tenant) \
            == int(report.work[tenant]["requests"])
    assert sum(mon.kernel_execs(t) for t in totals) == report.requests
