"""Golden-trace regression tests: bit-level drift detection.

Each golden fixture under ``tests/goldens/`` snapshots the exact output of
one deterministic pipeline — arrival-stream generation or per-request
completion times of one scheme over one small scenario — as JSON.  Python
serialises floats via ``repr`` (shortest round-tripping form), so loading
a fixture reproduces the original doubles bit-for-bit and plain ``==``
comparison catches *any* numeric drift, however small.

Two fixture families:

* ``arrivals_*`` — the PR 1 (untagged Poisson) and PR 2 (tenant-tagged)
  arrival streams.  These prove the scenario engine rides on top of the
  existing generators without perturbing them: any extra RNG draw,
  reordering or formula change in ``workloads/arrivals.py`` fails here.
* ``trace_*`` — per-request ``(name, arrival, start, finish)`` for one
  small steady-scenario stream under each scheme/firmware pairing: FIFO
  drain-overlap (NVIDIA-like) and exclusive (AMD-like) firmware baselines,
  the §3 sharing scheme, and Elastic Kernels' serialised merged launches.

Regenerating
------------

When an *intentional* timing-model change shifts these numbers, rerun

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py \
        --regen-goldens

and commit the fixture diff together with the change that caused it — the
diff is the reviewable record of the behaviour shift.  A golden test never
silently regenerates: without the flag, drift fails the build.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cl import amd_r9_295x2, nvidia_k20m
from repro.harness.open_system import OpenSystemExperiment
from repro.workloads import from_name, periodic_arrivals, poisson_arrivals

GOLDEN_DIR = Path(__file__).parent / "goldens"
METADATA = GOLDEN_DIR / "METADATA.json"

STREAM_SEED = 2016
STREAM_COUNT = 20
STREAM_RATE = 200.0

TRACE_SEED = 5
TRACE_COUNT = 6
TRACE_LOAD = 1.0


def _environment_hint():
    """Blame line for drift that comes from the environment, not the repo:
    numpy's NEP 19 allows Generator stream changes in feature releases, so
    a numpy bump alone can move every seeded draw."""
    if not METADATA.exists():
        return ""
    recorded = json.loads(METADATA.read_text(encoding="utf-8"))
    if recorded.get("numpy") == np.__version__:
        return ""
    return (" NOTE: fixtures were generated with numpy {} but this run "
            "uses numpy {} — NEP 19 permits RNG stream changes between "
            "feature releases, so the drift may be environmental; match "
            "the numpy version or regenerate.".format(
                recorded.get("numpy"), np.__version__))


def check_golden(name, payload, regen):
    """Compare ``payload`` against the stored fixture (or rewrite it)."""
    path = GOLDEN_DIR / name
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        METADATA.write_text(json.dumps({"numpy": np.__version__},
                                       indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
    if not path.exists():
        pytest.fail("golden fixture {} missing — generate it with "
                    "--regen-goldens and commit it".format(name))
    stored = json.loads(path.read_text(encoding="utf-8"))
    assert stored == payload, (
        "bit-level drift against golden {} — if the change is intentional, "
        "regenerate with --regen-goldens and commit the diff.{}".format(
            name, _environment_hint()))


# -- arrival streams (PR 1 / PR 2 formats stay frozen) ------------------------

def test_untagged_poisson_stream_matches_golden(regen_goldens):
    stream = poisson_arrivals(STREAM_RATE, STREAM_COUNT, seed=STREAM_SEED)
    payload = [[a.name, a.time] for a in stream]
    assert all(a.tenant is None and a.device is None for a in stream)
    check_golden("arrivals_pr1_poisson.json", payload, regen_goldens)


def test_tenant_tagged_stream_matches_golden(regen_goldens):
    stream = poisson_arrivals(STREAM_RATE, STREAM_COUNT, seed=STREAM_SEED,
                              tenants=3)
    payload = [[a.name, a.time, a.tenant] for a in stream]
    check_golden("arrivals_pr2_tenants.json", payload, regen_goldens)


def test_tagging_never_perturbs_deterministic_streams():
    """Tenant tagging must not move deterministic (RNG-free) arrivals —
    the periodic generator's times are a pure function of the interval.
    (For the Poisson generator tagged streams legitimately differ — tenant
    draws share the RNG — which is why the untagged golden above is the
    PR 1 compatibility anchor.)"""
    untagged = periodic_arrivals(0.25, STREAM_COUNT, names=("bfs", "sgemm"))
    tagged = periodic_arrivals(0.25, STREAM_COUNT, names=("bfs", "sgemm"),
                               tenants=2)
    assert [(a.name, a.time) for a in untagged] \
        == [(a.name, a.time) for a in tagged]


def test_scenario_stream_matches_golden(regen_goldens):
    stream = from_name("multi-tenant", seed=TRACE_SEED, load=TRACE_LOAD,
                       count=TRACE_COUNT, device=nvidia_k20m())
    payload = [[a.name, a.time, a.tenant] for a in stream]
    check_golden("arrivals_scenario_multi_tenant.json", payload,
                 regen_goldens)


# -- per-scheme completion-time traces ----------------------------------------

def _trace_payload(device, scheme):
    stream = from_name("steady", seed=TRACE_SEED, load=TRACE_LOAD,
                       count=TRACE_COUNT, device=device)
    records = OpenSystemExperiment(device).scheme_records(stream, scheme)
    return [[r.name, r.arrival, r.start, r.finish] for r in records]


@pytest.mark.parametrize("fixture, device_factory, scheme", [
    ("trace_fifo_baseline.json", nvidia_k20m, "baseline"),
    ("trace_exclusive_baseline.json", amd_r9_295x2, "baseline"),
    ("trace_accelos.json", nvidia_k20m, "accelos"),
    ("trace_ek.json", nvidia_k20m, "ek"),
])
def test_scheme_trace_matches_golden(fixture, device_factory, scheme,
                                     regen_goldens):
    check_golden(fixture, _trace_payload(device_factory(), scheme),
                 regen_goldens)
