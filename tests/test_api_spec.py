"""ExperimentSpec serialization round-trips and registry validation.

The declarative surface's contract: a spec is plain data (JSON → spec →
JSON bit-identical), and every name in it — scheme, scenario, placement,
device, metric — is validated eagerly against its registry with an error
that lists the valid names (actionable, not an echo of the bad string).
"""


import pytest

from repro.api import (DeviceEntry, ExperimentSpec, Registry,
                       device_names, metric_names, placement_names,
                       scheme_names)
from repro.api.spec import Cell
from repro.errors import SimulationError


# -- round-trips --------------------------------------------------------------

def full_spec():
    """A spec exercising every field away from its default."""
    return ExperimentSpec(
        scenario="multi-tenant",
        schemes=("accelos", "baseline"),
        loads=(0.5, 1.5),
        seeds=(3, 11),
        count=9,
        repetitions=2,
        devices=(
            {"id": "fast", "base": "nvidia-k20m"},
            {"id": "slow", "base": "nvidia-k20m",
             "clock_scale": 0.4, "cu_scale": 0.5},
            {"id": "amd", "base": "amd-r9-295x2"},
        ),
        placements=("least-loaded", "round-robin"),
        metrics=("antt", "p99_slowdown"),
        policy="naive",
        saturate=False,
    )


def test_dict_round_trip_is_identity():
    spec = full_spec()
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip_is_bit_identical():
    spec = full_spec()
    text = spec.to_json()
    again = ExperimentSpec.from_json(text)
    assert again == spec
    assert again.to_json() == text


def test_default_spec_round_trips():
    spec = ExperimentSpec()
    assert ExperimentSpec.from_json(spec.to_json()) == spec


def test_checked_in_smoke_spec_is_canonical(tmp_path):
    """The CI smoke spec is the canonical serialization of itself."""
    from pathlib import Path
    path = Path(__file__).parent / "goldens" / "spec_smoke.json"
    text = path.read_text(encoding="utf-8")
    assert ExperimentSpec.from_json(text).to_json() == text


def test_lists_and_tuples_serialize_identically():
    a = ExperimentSpec(loads=[0.5, 1.0], seeds=[1, 2])
    b = ExperimentSpec(loads=(0.5, 1.0), seeds=(1, 2))
    assert a == b and a.to_json() == b.to_json()


def test_device_entry_shorthand_and_scales():
    entry = DeviceEntry.from_dict("nvidia-k20m")
    assert entry.id == "nvidia-k20m" and entry.clock_scale == 1.0
    derated = DeviceEntry.from_dict(
        {"id": "slow", "base": "nvidia-k20m", "clock_scale": 0.5})
    assert derated.cu_scale == 1.0
    assert DeviceEntry.from_dict(derated.to_dict()) == derated


# -- eager validation with actionable errors ----------------------------------

def _assert_lists_names(excinfo, names):
    message = str(excinfo.value)
    for name in names:
        assert name in message, (name, message)


def test_unknown_scheme_lists_registered_names():
    with pytest.raises(SimulationError, match="unknown scheme") as excinfo:
        ExperimentSpec(schemes=("baseline", "fifo2"))
    _assert_lists_names(excinfo, scheme_names())


def test_unknown_scenario_lists_registered_names():
    with pytest.raises(SimulationError,
                       match="unknown scenario") as excinfo:
        ExperimentSpec(scenario="tsunami")
    _assert_lists_names(excinfo, ("steady", "bursty", "multi-tenant"))


def test_unknown_placement_lists_registered_names():
    with pytest.raises(SimulationError,
                       match="unknown placement") as excinfo:
        ExperimentSpec(devices=("nvidia-k20m", {"id": "b"}),
                       placements=("best-fit",))
    _assert_lists_names(excinfo, placement_names())


def test_unknown_device_lists_registered_names():
    with pytest.raises(SimulationError, match="unknown device") as excinfo:
        ExperimentSpec(devices=({"id": "x", "base": "tpu-v9"},))
    _assert_lists_names(excinfo, device_names())


def test_unknown_metric_lists_registered_names():
    with pytest.raises(SimulationError, match="unknown metric") as excinfo:
        ExperimentSpec(metrics=("latency99",))
    _assert_lists_names(excinfo, metric_names())


def test_unknown_spec_key_lists_valid_keys():
    with pytest.raises(SimulationError, match="unknown experiment spec"):
        ExperimentSpec.from_dict({"scenario": "steady", "loadz": [1.0]})


def test_invalid_json_is_actionable():
    with pytest.raises(SimulationError, match="not valid JSON"):
        ExperimentSpec.from_json("{nope")


@pytest.mark.parametrize("kwargs", [
    {"schemes": ()},
    {"schemes": ("accelos", "accelos")},
    {"loads": ()},
    {"loads": (0.0,)},
    {"loads": (-1.0,)},
    {"loads": (1, 1.0)},  # duplicates after float coercion
    {"seeds": ()},
    {"seeds": (1.5,)},
    {"seeds": (2, 2)},
    {"count": 0},
    {"count": "many"},
    {"repetitions": 0},
    {"devices": ()},
    {"saturate": "yes"},
    {"policy": "aggressive"},
    {"schemes": "accelos"},  # bare string, not a sequence
    {"metrics": ("antt", "antt")},
])
def test_invalid_field_values_raise(kwargs):
    with pytest.raises(SimulationError):
        ExperimentSpec(**kwargs)


def test_device_entry_without_id_is_actionable():
    with pytest.raises(SimulationError, match="needs an 'id'"):
        ExperimentSpec(devices=({"base": "nvidia-k20m"},))


def test_duplicate_device_ids_raise():
    with pytest.raises(SimulationError, match="unique"):
        ExperimentSpec(devices=({"id": "a"}, {"id": "a"}))


def test_placements_rejected_on_single_device():
    with pytest.raises(SimulationError, match="placements only apply"):
        ExperimentSpec(placements=("least-loaded",))


def test_fleet_defaults_to_least_loaded_placement():
    spec = ExperimentSpec(devices=({"id": "a"}, {"id": "b"}))
    assert spec.placements == ("least-loaded",)
    assert spec.is_fleet


def test_bad_device_scales_raise():
    for bad in ({"clock_scale": 0.0}, {"clock_scale": 1.5},
                {"cu_scale": -0.1}, {"clock_scale": True},
                {"cu_scale": False}):
        with pytest.raises(SimulationError):
            DeviceEntry(id="x", base="nvidia-k20m", **bad)


def test_cell_count_covers_the_grid():
    spec = full_spec()
    assert spec.cell_count() == (len(spec.loads) * len(spec.seeds)
                                 * spec.repetitions * len(spec.placements)
                                 * len(spec.schemes))


def test_cell_matching_rejects_unknown_fields():
    cell = Cell(scheme="accelos", load=1.0, seed=0)
    assert cell.matches(scheme="accelos", load=1.0)
    assert not cell.matches(scheme="baseline")
    with pytest.raises(SimulationError, match="unknown cell field"):
        cell.matches(color="red")


# -- the generic registry ------------------------------------------------------

def test_registry_reports_valid_names_on_miss():
    registry = Registry("widget")
    registry.register("a", 1)
    registry.register("b", 2)
    with pytest.raises(SimulationError, match="unknown widget 'c'") as e:
        registry.from_name("c")
    assert "a, b" in str(e.value)


def test_registry_rejects_silent_rebinding():
    registry = Registry("widget")
    registry.register("a", 1)
    with pytest.raises(SimulationError, match="already registered"):
        registry.register("a", 2)
    registry.register("a", 2, replace=True)
    assert registry.from_name("a") == 2
    registry.unregister("a")
    assert "a" not in registry
