"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.kernelc import ast_nodes as ast
from repro.kernelc import types as T
from repro.kernelc.lexer import tokenize
from repro.kernelc.parser import parse


def parse_source(source):
    return parse(tokenize(source))


def parse_function(body, params="global float* a"):
    program = parse_source("kernel void f({}) {{ {} }}".format(params, body))
    return program.functions[0]


def first_statement(body, params="global float* a"):
    return parse_function(body, params).body.statements[0]


def test_kernel_flag():
    program = parse_source("kernel void f() {} void g() {}")
    assert program.functions[0].is_kernel
    assert not program.functions[1].is_kernel


def test_underscore_kernel_keyword():
    assert parse_source("__kernel void f() {}").functions[0].is_kernel


def test_parameter_types():
    func = parse_source(
        "void f(global const float* a, local int* b, int n) {}").functions[0]
    a, b, n = [p.type for p in func.params]
    assert a == T.PointerType(T.FLOAT, T.GLOBAL) and a.is_const
    assert b == T.PointerType(T.INT, T.LOCAL)
    assert n == T.INT


def test_unsigned_int_parses():
    func = parse_source("void f(unsigned int x, unsigned y) {}").functions[0]
    assert func.params[0].type == T.UINT
    assert func.params[1].type == T.UINT


def test_local_array_declaration():
    stmt = first_statement("local float tmp[64];")
    decl = stmt.decls[0]
    assert decl.type == T.ArrayType(T.FLOAT, 64, T.LOCAL)


def test_array_size_must_be_constant():
    with pytest.raises(ParseError):
        parse_function("int n = 4; float x[n];")


def test_multi_declarator_statement():
    stmt = first_statement("int a = 1, b = 2, c;")
    assert [d.name for d in stmt.decls] == ["a", "b", "c"]
    assert stmt.decls[2].init is None


def test_if_else_chain():
    stmt = first_statement("if (1) a[0] = 1.0f; else if (2) a[0] = 2.0f; else a[0] = 3.0f;")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.otherwise, ast.If)
    assert stmt.otherwise.otherwise is not None


def test_for_loop_components():
    stmt = first_statement("for (int i = 0; i < 4; ++i) a[i] = 0.0f;")
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.DeclStmt)
    assert isinstance(stmt.cond, ast.Binary)
    assert isinstance(stmt.step, ast.Unary)


def test_for_loop_all_parts_optional():
    stmt = first_statement("for (;;) break;")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_while_and_do_while():
    func = parse_function("while (1) break; do { continue; } while (0);")
    assert isinstance(func.body.statements[0], ast.While)
    assert isinstance(func.body.statements[1], ast.DoWhile)


def test_precedence_mul_over_add():
    stmt = first_statement("int x = 1 + 2 * 3;")
    init = stmt.decls[0].init
    assert init.op == "+"
    assert init.rhs.op == "*"


def test_precedence_shift_vs_relational():
    stmt = first_statement("int x = 1 << 2 > 3;")
    assert stmt.decls[0].init.op == ">"


def test_logical_operators_precedence():
    stmt = first_statement("int x = 1 || 2 && 3;")
    init = stmt.decls[0].init
    assert init.op == "||"
    assert init.rhs.op == "&&"


def test_ternary_expression():
    stmt = first_statement("int x = 1 ? 2 : 3;")
    assert isinstance(stmt.decls[0].init, ast.Ternary)


def test_assignment_right_associative():
    func = parse_function("int x; int y; x = y = 3;", params="int n")
    expr = func.body.statements[2].expr
    assert isinstance(expr, ast.Assign)
    assert isinstance(expr.value, ast.Assign)


def test_compound_assignment_ops():
    for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="):
        stmt = first_statement("int x = 0; x {} 2;".format(op), params="int n")
        # second statement in the parsed function
    func = parse_function("int x = 0; x += 2;", params="int n")
    assert func.body.statements[1].expr.op == "+="


def test_cast_expression():
    stmt = first_statement("int x = (int)1.5f;")
    assert isinstance(stmt.decls[0].init, ast.Cast)
    assert stmt.decls[0].init.target_type == T.INT


def test_pointer_cast():
    stmt = first_statement("a[0] = 0.0f; ", params="global float* a")
    func = parse_function("global int* p = (global int*)a;")
    decl = func.body.statements[0].decls[0]
    assert isinstance(decl.init, ast.Cast)
    assert decl.init.target_type == T.PointerType(T.INT, T.GLOBAL)


def test_parenthesised_expression_not_cast():
    stmt = first_statement("int y = 1; int x = (y) + 2;", params="int n")
    func = parse_function("int y = 1; int x = (y) + 2;", params="int n")
    init = func.body.statements[1].decls[0].init
    assert init.op == "+"


def test_address_of_and_deref():
    func = parse_function("int v = 0; atomic_add(&a[0], 1); int w = *b;",
                          params="global int* a, global int* b")
    call = func.body.statements[1].expr
    assert isinstance(call.args[0], ast.Unary) and call.args[0].op == "&"
    deref = func.body.statements[2].decls[0].init
    assert isinstance(deref, ast.Unary) and deref.op == "*"


def test_call_with_no_args():
    stmt = first_statement("size_t d = get_work_dim();")
    assert isinstance(stmt.decls[0].init, ast.Call)
    assert stmt.decls[0].init.args == []


def test_nested_index():
    stmt = first_statement("a[a[0]] = 1.0f;", params="global int* a")
    target = stmt.expr.target
    assert isinstance(target, ast.Index)
    assert isinstance(target.index, ast.Index)


def test_postfix_increment():
    stmt = first_statement("int i = 0; i++;", params="int n")
    func = parse_function("int i = 0; i++;", params="int n")
    assert isinstance(func.body.statements[1].expr, ast.PostIncDec)


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_function("int x = 1")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_source("void f() { int x = 1;")


def test_error_reports_line():
    with pytest.raises(ParseError) as excinfo:
        parse_source("void f() {\n  int x = ;\n}")
    assert excinfo.value.line == 2
