"""Unit tests for the mini-OpenCL host runtime."""

import numpy as np
import pytest

from repro.cl import (Context, NDRange, get_platforms, known_devices,
                      nvidia_k20m, amd_r9_295x2)
from repro.errors import CLError, DeviceOutOfMemory
from repro.interp.memory import LocalArg
from repro.kernelc import types as T


def test_platform_discovery():
    platforms = get_platforms()
    assert {p.vendor for p in platforms} == {"NVIDIA", "AMD"}
    assert all(p.devices for p in platforms)


def test_device_capacities_k20m():
    dev = nvidia_k20m()
    assert dev.max_threads == 13 * 2048
    assert dev.total_local_mem == 13 * 48 * 1024
    assert dev.total_registers == 13 * 65536
    assert dev.scheduler_policy == "fifo"


def test_device_capacities_amd():
    dev = amd_r9_295x2()
    assert dev.num_cus == 44
    assert dev.scheduler_policy == "exclusive"
    assert dev.wavefront == 64


def test_known_devices_keys():
    assert set(known_devices()) == {"NVIDIA", "AMD"}


def test_buffer_roundtrip():
    ctx = Context(nvidia_k20m())
    buf = ctx.create_buffer(T.FLOAT, 16)
    data = np.arange(16, dtype=np.float32)
    buf.write(data)
    np.testing.assert_array_equal(buf.read(), data)


def test_allocator_tracks_usage():
    ctx = Context(nvidia_k20m())
    before = ctx.allocator.free_bytes
    buf = ctx.create_buffer(T.FLOAT, 1024)
    assert ctx.allocator.free_bytes == before - 4096
    buf.release()
    assert ctx.allocator.free_bytes == before


def test_allocator_out_of_memory():
    ctx = Context(nvidia_k20m())
    with pytest.raises(DeviceOutOfMemory):
        ctx.create_buffer(T.FLOAT, ctx.device.global_mem_bytes)


def test_use_after_release_rejected():
    ctx = Context(nvidia_k20m())
    buf = ctx.create_buffer(T.INT, 4)
    buf.release()
    with pytest.raises(CLError, match="released"):
        buf.read()


def test_double_release_is_idempotent():
    ctx = Context(nvidia_k20m())
    buf = ctx.create_buffer(T.INT, 4)
    buf.release()
    buf.release()


def test_ndrange_validation():
    with pytest.raises(CLError):
        NDRange((10,), (4,))
    nd = NDRange((64, 8), (16, 8))
    assert nd.work_dim == 2
    assert nd.num_groups == 4
    assert nd.work_group_size == 128
    assert nd.groups_per_dim == (4, 1, 1)


def test_program_build_and_kernel_names():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program("""
        kernel void a(global int* x) { x[0] = 1; }
        kernel void b(global int* x) { x[0] = 2; }
        void helper() {}
    """).build()
    assert sorted(program.kernel_names()) == ["a", "b"]


def test_program_unbuilt_rejected():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program("kernel void a(global int* x) {}")
    with pytest.raises(CLError, match="not been built"):
        program.create_kernel("a")


def test_unknown_kernel_rejected():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program("kernel void a(global int* x) {}").build()
    with pytest.raises(CLError, match="no kernel"):
        program.create_kernel("zzz")


def test_build_options_reach_preprocessor():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program("""
        kernel void f(global int* x) { x[0] = VALUE; }
    """).build(options="-D VALUE=77")
    kernel = program.create_kernel("f")
    buf = ctx.create_buffer(T.INT, 1)
    kernel.set_args(buf)
    ctx.create_queue().enqueue_nd_range(kernel, NDRange((1,), (1,)))
    assert buf.read()[0] == 77


def test_kernel_arg_validation():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program(
        "kernel void f(global int* x, int n) { x[0] = n; }").build()
    kernel = program.create_kernel("f")
    with pytest.raises(CLError, match="out of range"):
        kernel.set_arg(5, 1)
    with pytest.raises(CLError, match="expects 2"):
        kernel.set_args(1)


def test_unset_arg_detected_at_launch():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program(
        "kernel void f(global int* x, int n) { x[0] = n; }").build()
    kernel = program.create_kernel("f")
    kernel.set_arg(1, 3)
    with pytest.raises(CLError, match="never set"):
        ctx.create_queue().enqueue_nd_range(kernel, NDRange((1,), (1,)))


def test_local_arg_sizes_exposed():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program("""
        kernel void f(global float* a, local float* s) {
            s[get_local_id(0)] = a[0];
        }
    """).build()
    kernel = program.create_kernel("f")
    buf = ctx.create_buffer(T.FLOAT, 4)
    kernel.set_args(buf, LocalArg(512))
    assert kernel.local_arg_sizes() == {"s": 512}


def test_queue_execution_and_log():
    ctx = Context(nvidia_k20m())
    queue = ctx.create_queue()
    program = ctx.create_program("""
        kernel void twice(global float* a) {
            a[get_global_id(0)] = a[get_global_id(0)] * 2.0f;
        }
    """).build()
    kernel = program.create_kernel("twice")
    buf = ctx.create_buffer(T.FLOAT, 8)
    queue.enqueue_write_buffer(buf, np.ones(8, dtype=np.float32))
    kernel.set_args(buf)
    queue.enqueue_nd_range(kernel, NDRange((8,), (4,)))
    result = queue.enqueue_read_buffer(buf)
    assert (result == 2.0).all()
    kinds = [kind for kind, _ in queue.enqueue_log]
    assert kinds == ["write", "ndrange", "read"]


def test_kernel_resource_usage_query():
    ctx = Context(nvidia_k20m())
    program = ctx.create_program("""
        kernel void f(global float* a) {
            local float t[16];
            t[get_local_id(0)] = a[0];
            barrier(CLK_LOCAL_MEM_FENCE);
            a[0] = t[0];
        }
    """).build()
    usage = program.kernel_resource_usage("f")
    assert usage.local_memory_bytes == 64
    assert usage.registers > 0
