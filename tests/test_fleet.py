"""Tests for the multi-device fleet layer (placement + fleet harness)."""

import numpy as np
import pytest

from repro.accelos import FleetRuntime
from repro.accelos.placement import (AffinityPlacement, LeastLoadedPlacement,
                                     RoundRobinPlacement, default_policies,
                                     place_arrivals)
from repro.cl import NDRange, derated_device, nvidia_k20m
from repro.errors import SchedulingError, SimulationError
from repro.harness import (FleetOpenSystemExperiment, OpenSystemExperiment,
                           arrival_rate_for_load, fleet_arrival_rate_for_load,
                           isolated_time)
from repro.kernelc import types as T
from repro.sim import DeviceFleet
from repro.workloads import (periodic_arrivals, poisson_arrivals,
                             trace_arrivals)


def hetero_fleet():
    return DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated",
                                clock_scale=0.4, cu_scale=0.5)),
    ])


def homo_fleet(n=2):
    return DeviceFleet([("dev{}".format(i), nvidia_k20m())
                        for i in range(n)])


def constant_estimator(name, device):
    return 1.0


# -- DeviceFleet construction -------------------------------------------------

def test_fleet_requires_devices_and_unique_ids():
    with pytest.raises(SimulationError):
        DeviceFleet([])
    with pytest.raises(SimulationError):
        DeviceFleet([("a", nvidia_k20m()), ("a", nvidia_k20m())])


def test_fleet_rejects_same_name_different_specs():
    """Harness caches key on the device name: two specs sharing a name
    must be identical or every estimate for one of them would silently be
    computed from the other."""
    same_name_slower = derated_device(nvidia_k20m(), nvidia_k20m().name,
                                      clock_scale=0.5)
    with pytest.raises(SimulationError, match="distinct names"):
        DeviceFleet([("a", nvidia_k20m()), ("b", same_name_slower)])
    # identical specs under one name are fine (the homogeneous case)
    assert len(DeviceFleet([("a", nvidia_k20m()),
                            ("b", nvidia_k20m())])) == 2


def test_fleet_homogeneity_and_lookup():
    fleet = hetero_fleet()
    assert not fleet.homogeneous
    assert homo_fleet().homogeneous
    assert fleet.index_of("slow") == 1
    assert fleet.id_to_index() == {"fast": 0, "slow": 1}
    with pytest.raises(SimulationError):
        fleet.index_of("missing")
    assert fleet[0].relative_speed > fleet[1].relative_speed


def test_derated_device_is_slower():
    base = nvidia_k20m()
    slow = derated_device(base, "half", clock_scale=0.5)
    assert isolated_time("sgemm", slow) > isolated_time("sgemm", base)
    with pytest.raises(ValueError):
        derated_device(base, "bad", clock_scale=0.0)


# -- placement policies -------------------------------------------------------

def test_round_robin_cycles():
    policy = RoundRobinPlacement()
    arrivals = periodic_arrivals(0.1, 6, names=("bfs",))
    decisions = place_arrivals(policy, arrivals, homo_fleet().devices,
                               estimator=constant_estimator)
    assert [d.index for d in decisions] == [0, 1, 0, 1, 0, 1]


def test_least_loaded_prefers_idle_fast_device():
    fleet = hetero_fleet()
    policy = LeastLoadedPlacement()
    arrivals = trace_arrivals([("sgemm", 0.0)])
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=isolated_time)
    assert decisions[0].index == 0  # the fast device finishes it sooner


def test_least_loaded_spills_to_slow_device_under_backlog():
    fleet = hetero_fleet()
    policy = LeastLoadedPlacement()
    # a burst at t=0: the fast device's backlog grows until the slow one
    # is the earlier finish for some request
    arrivals = trace_arrivals([("sgemm", 0.0)] * 8)
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=isolated_time)
    used = {d.index for d in decisions}
    assert used == {0, 1}


def test_affinity_keeps_tenant_home_and_charges_migration():
    fleet = homo_fleet()
    policy = AffinityPlacement(penalty=0.5)
    # two tenants alternate; with the huge penalty nobody ever migrates
    arrivals = periodic_arrivals(0.01, 8, names=("bfs",),
                                 tenants=("t0", "t1"))
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=constant_estimator)
    homes = {}
    for d in decisions:
        homes.setdefault(d.arrival.tenant, set()).add(d.index)
        assert d.penalty == 0.0
    assert all(len(devices) == 1 for devices in homes.values())


def test_affinity_migrates_when_home_is_swamped():
    fleet = homo_fleet()
    policy = AffinityPlacement(penalty=0.1)
    # one tenant, its home device drowning in backlog: with the other
    # device idle the migration penalty is worth paying
    arrivals = trace_arrivals([("bfs", 0.0, "t0")] * 6)
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=constant_estimator)
    migrated = [d for d in decisions if d.penalty > 0]
    assert migrated, "expected at least one migration"
    assert all(d.penalty == 0.1 for d in migrated)


def test_pinned_arrivals_bypass_policy():
    fleet = homo_fleet()
    policy = RoundRobinPlacement()
    arrivals = trace_arrivals([
        ("bfs", 0.0, None, "dev1"),
        ("bfs", 0.1, None, "dev1"),
        ("bfs", 0.2),
    ])
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=constant_estimator,
                               ids=fleet.id_to_index())
    assert [d.index for d in decisions] == [1, 1, 0]
    assert [d.pinned for d in decisions] == [True, True, False]
    with pytest.raises(SchedulingError, match="unknown device"):
        place_arrivals(policy, trace_arrivals([("bfs", 0.0, None, "nope")]),
                       fleet.devices, estimator=constant_estimator,
                       ids=fleet.id_to_index())


def test_place_arrivals_conservation():
    """Every arrival is placed exactly once, in input order."""
    fleet = hetero_fleet()
    rate = fleet_arrival_rate_for_load(1.0, fleet)
    arrivals = poisson_arrivals(rate, 40, seed=5, tenants=6)
    for policy in default_policies().values():
        decisions = place_arrivals(policy, arrivals, fleet.devices,
                                   estimator=isolated_time,
                                   ids=fleet.id_to_index())
        assert len(decisions) == len(arrivals)
        assert [d.arrival for d in decisions] == arrivals
        assert all(0 <= d.index < len(fleet) for d in decisions)


def test_place_arrivals_rejects_bad_input():
    fleet = homo_fleet()
    with pytest.raises(SchedulingError):
        place_arrivals(RoundRobinPlacement(), [], fleet.devices,
                       estimator=constant_estimator)
    with pytest.raises(SchedulingError):
        place_arrivals(RoundRobinPlacement(),
                       trace_arrivals([("bfs", 0.0)]), [],
                       estimator=constant_estimator)


def test_placement_deterministic_across_runs():
    fleet = hetero_fleet()
    rate = fleet_arrival_rate_for_load(1.5, fleet)
    for policy_name in default_policies():
        a = place_arrivals(default_policies()[policy_name],
                           poisson_arrivals(rate, 30, seed=9, tenants=4),
                           fleet.devices, estimator=isolated_time)
        b = place_arrivals(default_policies()[policy_name],
                           poisson_arrivals(rate, 30, seed=9, tenants=4),
                           fleet.devices, estimator=isolated_time)
        assert [(d.index, d.penalty) for d in a] \
            == [(d.index, d.penalty) for d in b]


def test_policy_reuse_is_reproducible():
    """One policy object placing the same stream twice decides identically
    (reset clears the round-robin cursor / tenant homes)."""
    fleet = homo_fleet()
    arrivals = poisson_arrivals(50.0, 20, seed=2, tenants=3)
    for policy in default_policies().values():
        first = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=constant_estimator)
        second = place_arrivals(policy, arrivals, fleet.devices,
                                estimator=constant_estimator)
        assert [d.index for d in first] == [d.index for d in second]


# -- FleetOpenSystemExperiment ------------------------------------------------

def test_fleet_experiment_conserves_requests():
    fleet = hetero_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    rate = fleet_arrival_rate_for_load(1.0, fleet)
    arrivals = poisson_arrivals(rate, 24, seed=3)
    for scheme in ("baseline", "accelos", "ek"):
        result = experiment.run(arrivals, scheme, LeastLoadedPlacement())
        assert len(result.overall.records) == len(arrivals)
        per_device_total = sum(len(r.records)
                               for r in result.per_device.values())
        assert per_device_total == len(arrivals)
        assert abs(sum(result.device_share.values()) - 1.0) < 1e-12
        for record, arrival in zip(result.overall.records, arrivals):
            assert record.name == arrival.name
            assert record.arrival == arrival.time
            assert record.finish > record.arrival


def test_fleet_experiment_deterministic_under_fixed_seed():
    fleet = hetero_fleet()
    rate = fleet_arrival_rate_for_load(1.0, fleet)

    def run_once():
        experiment = FleetOpenSystemExperiment(hetero_fleet())
        arrivals = poisson_arrivals(rate, 20, seed=17, tenants=4)
        return experiment.run(arrivals, "accelos", AffinityPlacement())

    a, b = run_once(), run_once()
    assert a.overall.antt == b.overall.antt
    assert a.overall.unfairness == b.overall.unfairness
    assert [r.finish for r in a.overall.records] \
        == [r.finish for r in b.overall.records]
    assert a.device_share == b.device_share
    assert a.migrations == b.migrations


def test_homogeneous_fleet_fairness_no_worse_than_single_device():
    """Per-device fairness on a homogeneous fleet must not regress versus
    the single-device baseline serving the same per-device sub-stream:
    each member *is* a single device running the same allocator."""
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    rate = fleet_arrival_rate_for_load(1.0, fleet)
    arrivals = poisson_arrivals(rate, 24, seed=8)
    result = experiment.run(arrivals, "accelos", RoundRobinPlacement())

    decisions = experiment.place(arrivals, RoundRobinPlacement())
    single = OpenSystemExperiment(nvidia_k20m())
    for index, member in enumerate(fleet):
        sub = [d.arrival for d in decisions if d.index == index]
        if not sub:
            continue
        solo = single.run(sub, "accelos")
        per_device = result.per_device[member.id]
        assert per_device.unfairness == pytest.approx(solo.unfairness)
        assert per_device.antt == pytest.approx(solo.antt)


def test_fleet_pinned_trace_lands_on_tagged_devices():
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = trace_arrivals([
        ("bfs", 0.0, "t0", "dev0"),
        ("sgemm", 0.001, "t1", "dev1"),
        ("spmv", 0.002, "t0", "dev0"),
    ])
    result = experiment.run(arrivals, "baseline", LeastLoadedPlacement())
    names = {device_id: [r.name for r in res.records]
             for device_id, res in result.per_device.items()}
    assert names == {"dev0": ["bfs", "spmv"], "dev1": ["sgemm"]}


def test_fleet_migration_penalty_delays_start():
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    policy = AffinityPlacement(penalty=5e-3)
    # one tenant's home backlog forces a migration mid-stream
    arrivals = trace_arrivals([("sgemm", 0.0, "t0")] * 4)
    decisions = experiment.place(arrivals, policy)
    migrated = [i for i, d in enumerate(decisions) if d.penalty > 0]
    assert migrated
    result = experiment.run(arrivals, "baseline",
                            AffinityPlacement(penalty=5e-3))
    for i in migrated:
        record = result.overall.records[i]
        # the buffers move before the kernel can start on the new device
        assert record.start >= arrivals[i].time + 5e-3 - 1e-12


def test_fleet_rejects_empty_stream():
    experiment = FleetOpenSystemExperiment(homo_fleet())
    with pytest.raises(SimulationError):
        experiment.run([], "accelos", RoundRobinPlacement())


def test_fleet_arrival_rate_scales_with_fleet():
    single = nvidia_k20m()
    homo = homo_fleet(2)
    assert fleet_arrival_rate_for_load(1.0, homo) \
        == pytest.approx(2 * arrival_rate_for_load(1.0, single))
    with pytest.raises(SimulationError):
        fleet_arrival_rate_for_load(0.0, homo)


# -- FleetRuntime (functional plane) -----------------------------------------

SAXPY = """
kernel void saxpy(global const float* x, global float* y, float a)
{
    size_t gid = get_global_id(0);
    y[gid] = a * x[gid] + y[gid];
}
"""


def _run_saxpy(ctx, n=512, wg=128):
    program = ctx.create_program(SAXPY).build()
    kernel = program.create_kernel("saxpy")
    queue = ctx.create_queue()
    x = ctx.create_buffer(T.FLOAT, n)
    y = ctx.create_buffer(T.FLOAT, n)
    x_host = np.linspace(0, 1, n, dtype=np.float32)
    y_host = np.ones(n, dtype=np.float32)
    queue.enqueue_write_buffer(x, x_host)
    queue.enqueue_write_buffer(y, y_host)
    kernel.set_args(x, y, 3.0)
    queue.enqueue_nd_range(kernel, NDRange((n,), (wg,)))
    queue.finish()
    return queue.enqueue_read_buffer(y), 3.0 * x_host + y_host


def test_fleet_runtime_sessions_spread_and_compute_correctly():
    fleet = FleetRuntime([("fast", nvidia_k20m()),
                          ("slow", derated_device(nvidia_k20m(),
                                                  "K20m-half", 0.5))])
    devices_used = set()
    for app in ("app-a", "app-b"):
        result, expected = _run_saxpy(fleet.session(app))
        assert np.allclose(result, expected)
        devices_used.add(fleet.device_of(app))
    assert devices_used == {"fast", "slow"}
    assert len(fleet.launch_history) == 2


def test_fleet_runtime_sessions_are_sticky():
    fleet = FleetRuntime([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    fleet.session("app")
    home = fleet.device_of("app")
    fleet.session("app")  # returning application: same device
    assert fleet.device_of("app") == home
    with pytest.raises(SchedulingError, match="already lives"):
        fleet.session("app", device="a" if home == "b" else "b")


def test_fleet_runtime_accepts_device_fleet():
    """The evaluation-plane fleet object works as FleetRuntime input."""
    fleet = FleetRuntime(hetero_fleet())
    assert fleet.ids == ["fast", "slow"]
    result, expected = _run_saxpy(fleet.session("app"))
    assert np.allclose(result, expected)


def test_fleet_runtime_pinned_session_and_lookup():
    fleet = FleetRuntime([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    fleet.session("pinned", device="b")
    assert fleet.device_of("pinned") == "b"
    assert fleet.runtime_for("b") is fleet.runtimes[1]
    with pytest.raises(SchedulingError):
        fleet.runtime_for("zzz")
    with pytest.raises(SchedulingError):
        FleetRuntime([])
    with pytest.raises(SchedulingError):
        FleetRuntime([("x", nvidia_k20m()), ("x", nvidia_k20m())])


def test_fleet_runtime_drain_is_per_device():
    fleet = FleetRuntime([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    result_a, expected_a = _run_saxpy(fleet.session("app-a"))
    result_b, expected_b = _run_saxpy(fleet.session("app-b"))
    assert np.allclose(result_a, expected_a)
    assert np.allclose(result_b, expected_b)
    plans = fleet.drain()  # everything already drained by queue.finish()
    assert set(plans) == {"a", "b"}
    assert all(p == [] for p in plans.values())


# -- tagged arrival generators ------------------------------------------------

def test_tenantless_streams_unchanged():
    """Adding the tenant machinery must not perturb existing seeds."""
    stream = poisson_arrivals(100.0, 10, seed=42)
    assert all(a.tenant is None and a.device is None for a in stream)


def test_tenant_tagging_is_deterministic():
    a = poisson_arrivals(100.0, 30, seed=1, tenants=5)
    b = poisson_arrivals(100.0, 30, seed=1, tenants=5)
    assert a == b
    assert {x.tenant for x in a} <= {"app{}".format(i) for i in range(5)}
    with pytest.raises(SimulationError):
        poisson_arrivals(100.0, 10, tenants=0)
    with pytest.raises(SimulationError):
        poisson_arrivals(100.0, 10, tenants=())


def test_periodic_tenants_cycle():
    stream = periodic_arrivals(0.1, 4, names=("bfs",), tenants=("u", "v"))
    assert [a.tenant for a in stream] == ["u", "v", "u", "v"]
