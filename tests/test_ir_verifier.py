"""Branch-complete tests for :mod:`repro.ir.verifier`.

Every ``raise IRError`` in ``verify_function``/``_verify_instruction``/
``_verify_dominance`` gets one test that provokes exactly that branch,
building malformed IR by hand (and, where the builders themselves guard
against the malformation, by mutating past the guard — that is the
verifier's whole reason to exist: catching what transformations break
*after* construction).
"""

import pytest

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.function import BasicBlock, Function
from repro.ir.module import Module
from repro.ir.values import const_bool, const_float, const_int
from repro.ir.verifier import verify_function, verify_module
from repro.kernelc import types as T


def void_func(name="f"):
    return Function(name, T.VOID, [])


# -- structural checks (verify_function) -------------------------------------

def test_rejects_function_with_no_blocks():
    with pytest.raises(IRError, match="has no blocks"):
        verify_function(void_func("empty"))


def test_rejects_missing_terminator():
    func = void_func()
    block = func.add_block("bb")
    block.append(I.BinOp("add", const_int(1), const_int(2), T.INT))
    with pytest.raises(IRError, match="lacks a terminator"):
        verify_function(func)


def test_rejects_terminator_mid_block():
    func = void_func()
    block = func.add_block("bb")
    # BasicBlock.append refuses to grow past a terminator, so splice the
    # malformed sequence in directly — the shape a buggy pass could leave.
    for insn in (I.Ret(),
                 I.BinOp("add", const_int(1), const_int(2), T.INT),
                 I.Ret()):
        insn.parent = block
        block.instructions.append(insn)
    with pytest.raises(IRError, match="terminator mid-block"):
        verify_function(func)


def test_rejects_broken_parent_link():
    func = void_func()
    block = func.add_block("bb")
    insn = block.append(I.BinOp("add", const_int(1), const_int(2), T.INT))
    block.append(I.Ret())
    insn.parent = BasicBlock("elsewhere")
    with pytest.raises(IRError, match="parent link broken"):
        verify_function(func)


def test_rejects_branch_to_foreign_block():
    func = void_func()
    block = func.add_block("bb")
    block.append(I.Br(BasicBlock("foreign")))  # never added to func
    with pytest.raises(IRError, match="foreign block"):
        verify_function(func)


# -- operand checks (_verify_instruction) ------------------------------------

def test_rejects_null_operand():
    func = void_func()
    block = func.add_block("bb")
    insn = block.append(I.BinOp("add", const_int(1), const_int(2), T.INT))
    block.append(I.Ret())
    insn.operands[0] = None
    with pytest.raises(IRError, match="null operand"):
        verify_function(func)


def test_rejects_foreign_argument():
    other = Function("g", T.VOID, [T.INT], ["x"])
    func = void_func()
    block = func.add_block("bb")
    block.append(I.Cmp("eq", other.arguments[0], const_int(0)))
    block.append(I.Ret())
    with pytest.raises(IRError, match="foreign argument"):
        verify_function(func)


def test_rejects_operand_defined_nowhere():
    orphan = I.BinOp("add", const_int(1), const_int(2), T.INT, "orphan")
    func = void_func()
    block = func.add_block("bb")
    block.append(I.Cmp("eq", orphan, const_int(0)))
    block.append(I.Ret())
    with pytest.raises(IRError, match="not defined"):
        verify_function(func)


def test_rejects_load_from_non_pointer():
    func = void_func()
    block = func.add_block("bb")
    slot = block.append(I.Alloca(T.INT))
    load = block.append(I.Load(slot))
    block.append(I.Ret())
    load.operands[0] = const_int(0)  # the ctor guards; a pass may not
    with pytest.raises(IRError, match="load from non-pointer"):
        verify_function(func)


def test_rejects_store_to_non_pointer():
    func = void_func()
    block = func.add_block("bb")
    slot = block.append(I.Alloca(T.INT))
    store = block.append(I.Store(slot, const_int(1)))
    block.append(I.Ret())
    store.operands[0] = const_int(0)
    with pytest.raises(IRError, match="store to non-pointer"):
        verify_function(func)


def test_rejects_store_type_mismatch():
    func = void_func()
    block = func.add_block("bb")
    slot = block.append(I.Alloca(T.INT))
    block.append(I.Store(slot, const_float(1.0)))
    block.append(I.Ret())
    with pytest.raises(IRError, match="store type mismatch"):
        verify_function(func)


def test_rejects_binop_operand_mismatch():
    func = void_func()
    block = func.add_block("bb")
    block.append(I.BinOp("add", const_int(1), const_float(1.0), T.INT))
    block.append(I.Ret())
    with pytest.raises(IRError, match="binop operand mismatch"):
        verify_function(func)


def test_rejects_cmp_operand_mismatch():
    func = void_func()
    block = func.add_block("bb")
    block.append(I.Cmp("eq", const_int(1), const_float(1.0)))
    block.append(I.Ret())
    with pytest.raises(IRError, match="cmp operand mismatch"):
        verify_function(func)


def test_rejects_ret_void_in_non_void_function():
    func = Function("f", T.INT, [])
    block = func.add_block("bb")
    block.append(I.Ret())
    with pytest.raises(IRError, match="ret void in non-void"):
        verify_function(func)


def test_rejects_ret_type_mismatch():
    func = Function("f", T.INT, [])
    block = func.add_block("bb")
    block.append(I.Ret(const_float(2.0)))
    with pytest.raises(IRError, match="ret type mismatch"):
        verify_function(func)


# -- call checks -------------------------------------------------------------

def _ret_void(func):
    block = func.add_block("bb")
    block.append(I.Ret())
    return func


def test_rejects_call_to_stale_clone():
    module = Module("m")
    callee = _ret_void(Function("callee", T.VOID, []))
    module.add_function(callee)
    stale = _ret_void(Function("callee", T.VOID, []))  # same name, clone
    caller = Function("caller", T.VOID, [])
    block = caller.add_block("bb")
    block.append(I.Call(stale, [], T.VOID))
    block.append(I.Ret())
    module.add_function(caller)
    with pytest.raises(IRError, match="stale clone"):
        verify_function(caller, module)


def test_rejects_call_arity_mismatch():
    callee = _ret_void(Function("callee", T.VOID, [T.INT], ["x"]))
    caller = Function("caller", T.VOID, [])
    block = caller.add_block("bb")
    block.append(I.Call(callee, [], T.VOID))
    block.append(I.Ret())
    with pytest.raises(IRError, match="call arity mismatch"):
        verify_function(caller)


def test_rejects_call_argument_type_mismatch():
    callee = _ret_void(Function("callee", T.VOID, [T.INT], ["x"]))
    caller = Function("caller", T.VOID, [])
    block = caller.add_block("bb")
    block.append(I.Call(callee, [const_float(1.0)], T.VOID))
    block.append(I.Ret())
    with pytest.raises(IRError, match="call argument type mismatch"):
        verify_function(caller)


def test_accepts_pointer_for_pointer_call_argument():
    # address-space-agnostic pointer passing is explicitly allowed
    param_ptr = T.PointerType(T.INT, T.GLOBAL)
    callee = _ret_void(Function("callee", T.VOID, [param_ptr], ["p"]))
    caller = Function("caller", T.VOID, [])
    block = caller.add_block("bb")
    slot = block.append(I.Alloca(T.INT))  # private int*, not global int*
    block.append(I.Call(callee, [slot], T.VOID))
    block.append(I.Ret())
    assert verify_function(caller)


# -- dominance checks (_verify_dominance) ------------------------------------

def test_rejects_use_of_value_from_unreachable_block():
    func = void_func()
    entry = func.add_block("entry")
    join = func.add_block("join")
    dead = func.add_block("dead")  # no predecessors, not the entry
    entry.append(I.Br(join))
    value = dead.append(I.BinOp("add", const_int(1), const_int(2), T.INT, "v"))
    dead.append(I.Br(join))
    join.append(I.Cmp("eq", value, const_int(0)))
    join.append(I.Ret())
    with pytest.raises(IRError, match="unreachable block"):
        verify_function(func)


def test_rejects_use_before_def_in_same_block():
    func = void_func()
    block = func.add_block("bb")
    later = I.BinOp("add", const_int(1), const_int(2), T.INT, "later")
    block.append(I.Cmp("eq", later, const_int(0)))
    block.append(later)
    block.append(I.Ret())
    with pytest.raises(IRError, match="use before def"):
        verify_function(func)


def test_rejects_def_that_does_not_dominate_use():
    func = void_func()
    entry = func.add_block("entry")
    left = func.add_block("left")
    right = func.add_block("right")
    join = func.add_block("join")
    entry.append(I.CondBr(const_bool(True), left, right))
    value = left.append(I.BinOp("add", const_int(1), const_int(2), T.INT, "v"))
    left.append(I.Br(join))
    right.append(I.Br(join))  # join reachable while skipping the def
    join.append(I.Cmp("eq", value, const_int(0)))
    join.append(I.Ret())
    with pytest.raises(IRError, match="does not dominate"):
        verify_function(func)


def test_accepts_def_that_dominates_cross_block_use():
    func = void_func()
    entry = func.add_block("entry")
    tail = func.add_block("tail")
    value = entry.append(I.BinOp("add", const_int(1), const_int(2), T.INT, "v"))
    entry.append(I.Br(tail))
    tail.append(I.Cmp("eq", value, const_int(0)))
    tail.append(I.Ret())
    assert verify_function(func)


# -- happy paths -------------------------------------------------------------

def test_accepts_minimal_valid_function():
    func = Function("ok", T.INT, [T.INT], ["x"])
    block = func.add_block("entry")
    value = block.append(
        I.BinOp("add", func.arguments[0], const_int(1), T.INT, "v"))
    block.append(I.Ret(value))
    assert verify_function(func)


def test_verify_module_checks_every_function():
    module = Module("m")
    module.add_function(_ret_void(Function("a", T.VOID, [])))
    broken = Function("b", T.VOID, [])
    broken.add_block("bb")  # no terminator
    module.add_function(broken)
    with pytest.raises(IRError, match="lacks a terminator"):
        verify_module(module)
