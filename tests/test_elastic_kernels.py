"""Unit tests for the Elastic Kernels baseline."""

import numpy as np
import pytest

from repro.baselines.elastic_kernels import (MAX_MERGE,
                                             ElasticKernelsScheduler,
                                             elastic_merge_kernels)
from repro.cl import nvidia_k20m
from repro.interp import KernelLauncher
from repro.interp.memory import alloc_buffer
from repro.ir import compile_source, verify_module
from repro.kernelc import types as T
from repro.sim import ExecutionMode, KernelExecSpec


def spec(name, n=512, wg=256, regs=16, lmem=0):
    return KernelExecSpec(name, wg, np.full(n, 1e-4), 0.0, regs, lmem)


def test_pack_single_kernel():
    sched = ElasticKernelsScheduler(nvidia_k20m())
    groups = sched.pack([spec("a")])
    assert len(groups) == 1
    assert groups[0].allocations[0] >= 1


def test_pack_pair_coruns():
    sched = ElasticKernelsScheduler(nvidia_k20m())
    groups = sched.pack([spec("a"), spec("b")])
    assert len(groups) == 1


def test_pack_respects_max_merge():
    sched = ElasticKernelsScheduler(nvidia_k20m())
    groups = sched.pack([spec(str(i)) for i in range(MAX_MERGE + 3)])
    assert all(len(g.specs) <= MAX_MERGE for g in groups)
    assert len(groups) >= 2


def test_split_is_work_proportional():
    sched = ElasticKernelsScheduler(nvidia_k20m())
    big = spec("big", n=4000)
    small = spec("small", n=100)
    group = sched.pack([big, small])[0]
    alloc = dict(zip((s.name for s in group.specs), group.allocations))
    assert alloc["big"] > alloc["small"]


def test_split_fits_device():
    dev = nvidia_k20m()
    sched = ElasticKernelsScheduler(dev)
    groups = sched.pack([spec(str(i), wg=512, regs=24) for i in range(4)])
    for group in groups:
        threads = sum(a * s.wg_threads
                      for s, a in zip(group.specs, group.allocations))
        assert threads <= dev.max_threads


def test_sim_specs_have_merge_overhead():
    sched = ElasticKernelsScheduler(nvidia_k20m())
    group = sched.pack([spec("a"), spec("b")])[0]
    merged = sched.to_sim_specs(group)
    assert all(m.mode == ExecutionMode.ELASTIC for m in merged)
    # 4% merge overhead for one extra kernel
    assert merged[0].wg_costs[0] == pytest.approx(1e-4 * 1.04)


def test_single_kernel_group_has_no_overhead():
    sched = ElasticKernelsScheduler(nvidia_k20m())
    group = sched.pack([spec("a")])[0]
    merged = sched.to_sim_specs(group)
    assert merged[0].wg_costs[0] == pytest.approx(1e-4)


# -- the real static merge ---------------------------------------------------

MERGE_A = """
kernel void ka(global float* a)
{
    size_t g = get_global_id(0);
    a[g] = a[g] + 10.0f;
}
"""

MERGE_B = """
float helper_b(float x) { return x * 2.0f; }
kernel void kb(global float* b)
{
    size_t g = get_global_id(0);
    size_t grp = get_group_id(0);
    b[g] = helper_b(b[g]) + (float)grp;
}
"""


def test_elastic_merge_produces_verified_module():
    ma = compile_source(MERGE_A)
    mb = compile_source(MERGE_B)
    merged, name = elastic_merge_kernels(ma, "ka", mb, "kb", split=2)
    assert name in merged
    verify_module(merged)


def test_elastic_merge_computes_both_kernels():
    wg, groups_a, groups_b = 32, 2, 3
    ma = compile_source(MERGE_A)
    mb = compile_source(MERGE_B)

    rng = np.random.default_rng(5)
    a_host = rng.random(groups_a * wg).astype(np.float32)
    b_host = rng.random(groups_b * wg).astype(np.float32)

    # references from the unmerged kernels
    a_ref = alloc_buffer(T.FLOAT, a_host.size)
    a_ref.region.fill_from(a_host)
    KernelLauncher(ma).launch("ka", [a_ref], (groups_a * wg,), (wg,))
    b_ref = alloc_buffer(T.FLOAT, b_host.size)
    b_ref.region.fill_from(b_host)
    KernelLauncher(mb).launch("kb", [b_ref], (groups_b * wg,), (wg,))

    merged, name = elastic_merge_kernels(ma, "ka", mb, "kb", split=groups_a)
    a_buf = alloc_buffer(T.FLOAT, a_host.size)
    a_buf.region.fill_from(a_host)
    b_buf = alloc_buffer(T.FLOAT, b_host.size)
    b_buf.region.fill_from(b_host)
    KernelLauncher(merged).launch(
        name, [a_buf, b_buf], ((groups_a + groups_b) * wg,), (wg,))

    np.testing.assert_array_equal(
        a_buf.region.to_array(np.float32, a_host.size),
        a_ref.region.to_array(np.float32, a_host.size))
    np.testing.assert_array_equal(
        b_buf.region.to_array(np.float32, b_host.size),
        b_ref.region.to_array(np.float32, b_host.size))


def test_elastic_merge_shares_one_binary():
    # the security concern: both applications' code ends up in one module
    ma = compile_source(MERGE_A)
    mb = compile_source(MERGE_B)
    merged, _ = elastic_merge_kernels(ma, "ka", mb, "kb", split=1)
    names = set(merged.functions)
    assert any(n.startswith("ek_a_") for n in names)
    assert any(n.startswith("ek_b_") for n in names)
