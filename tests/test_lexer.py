"""Unit tests for the tokenizer."""

import pytest

from repro.errors import LexError
from repro.kernelc.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_identifiers_and_keywords():
    assert kinds("foo kernel bar_2 int") == [
        ("ident", "foo"), ("keyword", "kernel"),
        ("ident", "bar_2"), ("keyword", "int")]


def test_underscore_identifiers():
    assert kinds("_x __global_thing") == [
        ("ident", "_x"), ("ident", "__global_thing")]


def test_integer_literals():
    assert kinds("0 42 123456") == [("int", 0), ("int", 42), ("int", 123456)]


def test_hex_literals():
    assert kinds("0x10 0xFF 0Xab") == [("int", 16), ("int", 255), ("int", 171)]


def test_float_literals():
    values = [v for _, v in kinds("1.5 0.25 2. .5")]
    assert values == [1.5, 0.25, 2.0, 0.5]


def test_float_exponent_literals():
    values = [v for _, v in kinds("1e3 2.5e-2 1E+2")]
    assert values == [1000.0, 0.025, 100.0]


def test_float_suffix():
    tokens = tokenize("1f 2.0f")
    assert tokens[0].kind == "float" and tokens[0].value == 1.0
    assert tokens[1].kind == "float" and tokens[1].value == 2.0


def test_integer_suffixes_do_not_change_kind():
    tokens = tokenize("7u 9L")
    assert tokens[0].kind == "int" and tokens[0].value == 7
    assert tokens[1].kind == "int" and tokens[1].value == 9


def test_maximal_munch_operators():
    ops = [v for _, v in kinds("a<<=b>>c<=d<e")]
    assert ops == ["a", "<<=", "b", ">>", "c", "<=", "d", "<", "e"]


def test_increment_vs_plus():
    ops = [v for k, v in kinds("a++ + ++b") if k == "op"]
    assert ops == ["++", "+", "++"]


def test_line_and_column_tracking():
    tokens = tokenize("a\n  bb\n c")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)
    assert (tokens[2].line, tokens[2].column) == (3, 2)


def test_line_comments_skipped():
    assert kinds("a // comment here\nb") == [("ident", "a"), ("ident", "b")]


def test_block_comments_skipped():
    assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]


def test_block_comment_preserves_line_numbers():
    tokens = tokenize("/* 1\n2\n3 */ x")
    assert tokens[0].line == 3


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_token_is_op_helper():
    token = Token("op", "+", 1, 1)
    assert token.is_op("+", "-")
    assert not token.is_op("*")


def test_token_is_keyword_helper():
    token = Token("keyword", "kernel", 1, 1)
    assert token.is_keyword("kernel")
    assert not token.is_keyword("void")


def test_full_kernel_tokenizes():
    source = "kernel void f(global float* a) { a[get_global_id(0)] = 1.0f; }"
    token_kinds = {t.kind for t in tokenize(source)}
    assert token_kinds == {"keyword", "ident", "op", "int", "float", "eof"}
