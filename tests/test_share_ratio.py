"""End-to-end tests for weighted sharing (paper §2.2).

"There may be occasions where it is deemed fairer to give more resources to
one application over another ... This can easily be achieved by changing the
sharing ratio."
"""

import numpy as np

from repro.accelos import AccelOSRuntime
from repro.cl import NDRange, nvidia_k20m
from repro.kernelc import types as T

SOURCE = """
kernel void work(global float* a)
{
    size_t g = get_global_id(0);
    a[g] = a[g] + 1.0f;
}
"""


def _submit(runtime, app_id, n=16384, wg=256):
    app = runtime.session(app_id)
    program = app.create_program(SOURCE).build()
    kernel = program.create_kernel("work")
    buf = app.create_buffer(T.FLOAT, n)
    queue = app.create_queue()
    queue.enqueue_write_buffer(buf, np.zeros(n, dtype=np.float32))
    kernel.set_args(buf)
    queue.enqueue_nd_range(kernel, NDRange((n,), (wg,)))
    return buf, queue


def test_weighted_drain_allocates_proportionally():
    runtime = AccelOSRuntime(nvidia_k20m())
    _submit(runtime, "premium")
    _submit(runtime, "basic")
    plans = runtime.drain(share_ratio=[3.0, 1.0])
    premium, basic = plans
    assert premium.physical_groups >= 2 * basic.physical_groups
    total = sum(p.physical_groups * p.requirements.wg_threads for p in plans)
    assert total <= runtime.context.device.max_threads


def test_weighted_drain_still_correct():
    runtime = AccelOSRuntime(nvidia_k20m())
    buf_a, queue_a = _submit(runtime, "a")
    buf_b, queue_b = _submit(runtime, "b")
    runtime.drain(share_ratio=[4.0, 1.0])
    assert (queue_a.enqueue_read_buffer(buf_a) == 1.0).all()
    assert (queue_b.enqueue_read_buffer(buf_b) == 1.0).all()


def test_equal_ratio_matches_default():
    runtime_default = AccelOSRuntime(nvidia_k20m())
    _submit(runtime_default, "x")
    _submit(runtime_default, "y")
    default_plans = runtime_default.drain()

    runtime_equal = AccelOSRuntime(nvidia_k20m())
    _submit(runtime_equal, "x")
    _submit(runtime_equal, "y")
    equal_plans = runtime_equal.drain(share_ratio=[1.0, 1.0])

    assert [p.physical_groups for p in default_plans] == \
        [p.physical_groups for p in equal_plans]
