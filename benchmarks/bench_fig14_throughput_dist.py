"""Figure 14: throughput-speedup distributions across all workloads."""

import numpy as np
import pytest

from benchmarks.conftest import DEVICES, sweep_summary
from repro.harness import format_table, run_workload


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig14_throughput_distribution(benchmark, emit, device_name):
    rows = []
    slow_acc_all = []
    slow_ek_all = []
    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        acc = np.asarray(summary.throughput_speedups["accelos"])
        ek = np.asarray(summary.throughput_speedups["ek"])
        slow_acc_all.append((acc < 1).mean())
        slow_ek_all.append((ek < 1).mean())
        rows.append([
            k,
            float(acc.min()), float(np.median(acc)), float(acc.max()),
            "{:.0f}%".format(100 * (acc < 1).mean()),
            "{:.0f}%".format(100 * (ek < 1).mean()),
        ])
    emit(format_table(
        ["requests", "accelOS min", "median", "max", "accelOS slowdowns",
         "EK slowdowns"],
        rows,
        title="Fig 14 ({}) — throughput speedup distribution (paper: range "
              "0.52x-4.8x; <5% accelOS slowdowns, 54% EK slowdowns)"
              .format(device_name)))

    device = DEVICES[device_name]()
    benchmark(run_workload, ("stencil", "cutcp"), "ek", device,
              repetitions=1)

    # accelOS slows down far fewer workloads than EK does
    assert np.mean(slow_acc_all) < np.mean(slow_ek_all)
