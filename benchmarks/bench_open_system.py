"""Open-system evaluation: streaming arrivals versus offered load.

Beyond the paper's closed batches (§7.2 submits every kernel at t=0), this
bench drives the three schemes with a seeded Poisson arrival stream over
the Parboil corpus and reports per-request unfairness, STP, ANTT and mean
queueing delay as offered load grows.  The paper's qualitative claims
should extend to the streaming regime: the standard stack serialises
(later arrivals starve), Elastic Kernels' static merging degrades further
(arrivals cannot join a running merged launch), and accelOS's continuous
re-allocation keeps slowdowns even.
"""

import pytest

from benchmarks.conftest import DEVICES
from repro.harness import (OpenSystemExperiment, arrival_rate_for_load,
                           format_table)
from repro.workloads import poisson_arrivals

STREAM_LENGTH = 32   # requests per stream (acceptance floor)
SEED = 2016
LOADS = (0.5, 1.0, 2.0)  # offered load rho = lambda * E[S_isolated]
SCHEME_ORDER = ("baseline", "ek", "accelos")


def stream(device, load):
    """The seeded Poisson stream for one (device, load) point."""
    rate = arrival_rate_for_load(load, device)
    return poisson_arrivals(rate, STREAM_LENGTH, seed=SEED)


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_open_system_streaming(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    experiment = OpenSystemExperiment(device)

    results_by_load = {}
    rows = []
    for load in LOADS:
        results = experiment.run_all(stream(device, load))
        results_by_load[load] = results
        for scheme in SCHEME_ORDER:
            r = results[scheme]
            rows.append([load, scheme, r.unfairness, r.stp, r.antt,
                         r.mean_queueing_delay * 1e3])
    emit(format_table(
        ["load", "scheme", "unfairness", "STP", "ANTT", "queue delay (ms)"],
        rows,
        title="Open system ({}) — {} Poisson requests per stream, seed {}"
        .format(device_name, STREAM_LENGTH, SEED)))

    benchmark(experiment.run, stream(device, 1.0), "accelos")

    for load, results in results_by_load.items():
        # accelOS's continuous re-allocation keeps per-request slowdowns
        # even; FIFO queueing starves late arrivals on the standard stack.
        assert (results["accelos"].unfairness
                < results["baseline"].unfairness), load
        # static merging cannot adapt to arrivals: EK never beats accelOS
        assert results["accelos"].antt < results["ek"].antt, load

    # the whole campaign is a pure function of the seed: a re-run with the
    # same stream is bit-identical
    rerun = experiment.run_all(stream(device, 1.0))
    for scheme, result in results_by_load[1.0].items():
        again = rerun[scheme]
        assert again.unfairness == result.unfairness
        assert again.stp == result.stp
        assert again.antt == result.antt
        assert again.mean_queueing_delay == result.mean_queueing_delay
        assert ([r.finish for r in again.records]
                == [r.finish for r in result.records])
