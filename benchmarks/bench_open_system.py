"""Open-system evaluation: streaming arrivals versus offered load.

Beyond the paper's closed batches (§7.2 submits every kernel at t=0), this
bench drives every registered scheme with a seeded steady (Poisson)
arrival stream over the Parboil corpus and reports per-request
unfairness, STP, ANTT and mean queueing delay as offered load grows.  The
paper's qualitative claims should extend to the streaming regime: the
standard stack serialises (later arrivals starve), Elastic Kernels'
static merging degrades further (arrivals cannot join a running merged
launch), and accelOS's continuous re-allocation keeps slowdowns even.

The whole campaign is one declarative :class:`repro.api.ExperimentSpec`
run through ``repro.api.run`` — no hand-wired device/stream/scheme
plumbing (docs/API.md).
"""

import pytest

from repro.api import ExperimentSpec, build_device, build_stream, run
from repro.harness import OpenSystemExperiment, format_table

STREAM_LENGTH = 32   # requests per stream (acceptance floor)
SEED = 2016
LOADS = (0.5, 1.0, 2.0)  # offered load rho = lambda * E[S_isolated]
SCHEME_ORDER = ("baseline", "ek", "accelos")

DEVICE_BASES = {
    "NVIDIA K20m": "nvidia-k20m",
    "AMD R9 295X2": "amd-r9-295x2",
}


def spec_for(base, loads=LOADS, count=STREAM_LENGTH,
             schemes=SCHEME_ORDER):
    """The declarative campaign for one device."""
    return ExperimentSpec(
        scenario="steady",
        schemes=schemes,
        loads=loads,
        seeds=(SEED,),
        count=count,
        devices=({"id": base, "base": base},),
        metrics=("unfairness", "stp", "antt", "mean_queueing_delay"),
    )


@pytest.mark.parametrize("device_name", list(DEVICE_BASES))
def test_open_system_streaming(benchmark, emit, device_name):
    spec = spec_for(DEVICE_BASES[device_name])
    results = run(spec)

    rows = []
    for load in LOADS:
        for scheme in SCHEME_ORDER:
            r = results.get(scheme=scheme, load=load)
            rows.append([load, scheme, r.unfairness, r.stp, r.antt,
                         r.mean_queueing_delay * 1e3])
    emit(format_table(
        ["load", "scheme", "unfairness", "STP", "ANTT", "queue delay (ms)"],
        rows,
        title="Open system ({}) — {} steady requests per stream, seed {}"
        .format(device_name, STREAM_LENGTH, SEED)))

    # the timed probe keeps the pre-port target exactly: one accelos
    # simulation over a pre-built stream — spec validation, device build
    # and stream generation stay outside the measured region so the CI
    # perf trajectory keeps tracking the simulator, not the plumbing.
    # build_stream is the driver's own stream derivation, so the probe
    # simulates the same workload as the asserted results above.
    device = build_device(spec.devices[0])
    stream = build_stream(spec, 1.0, SEED, 0, device=device)
    benchmark(OpenSystemExperiment(device).run, stream, "accelos")

    for load in LOADS:
        # accelOS's continuous re-allocation keeps per-request slowdowns
        # even; FIFO queueing starves late arrivals on the standard stack.
        assert (results.unfairness(scheme="accelos", load=load)
                < results.unfairness(scheme="baseline", load=load)), load
        # static merging cannot adapt to arrivals: EK never beats accelOS
        assert (results.antt(scheme="accelos", load=load)
                < results.antt(scheme="ek", load=load)), load

    # the whole campaign is a pure function of the spec: re-running the
    # load-1.0 sub-spec (the pre-port check's cost) reproduces those
    # cells bit-identically
    again = run(spec_for(DEVICE_BASES[device_name], loads=(1.0,)))
    for scheme in SCHEME_ORDER:
        for metric in spec.metrics:
            assert again.metric(metric, scheme=scheme) \
                == results.metric(metric, scheme=scheme, load=1.0)
    assert ([r.finish for r in again.records(scheme="accelos")]
            == [r.finish for r in results.records(scheme="accelos",
                                                  load=1.0)])
