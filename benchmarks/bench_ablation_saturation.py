"""Ablation (§3): the greedy saturation heuristic on/off.

The paper's allocation formulae are conservative (Diophantine); the greedy
pass hands unused resources back.  This bench quantifies what saturation
buys in throughput and costs in fairness.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEVICES
from repro.harness import format_table, run_workload
from repro.workloads import random_workloads


@pytest.mark.parametrize("device_name", ["NVIDIA K20m"])
def test_ablation_greedy_saturation(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    workloads = random_workloads(4, 24, seed=99)

    rows = []
    for saturate, label in ((False, "min(x,y,z) only"),
                            (True, "with greedy saturation")):
        unfairness = []
        makespans = []
        for workload in workloads:
            result = run_workload(workload, "accelos", device,
                                  repetitions=1, saturate=saturate)
            unfairness.append(result.unfairness)
            makespans.append(result.makespan)
        rows.append([label, float(np.mean(unfairness)),
                     float(np.mean(makespans)) * 1e3])
    emit(format_table(
        ["allocation", "avg unfairness", "avg makespan (ms)"], rows,
        title="Ablation §3 ({}) — greedy saturation reclaims leftover "
              "resources".format(device_name)))

    benchmark(run_workload, workloads[0], "accelos", device, repetitions=1)

    # saturation must not hurt throughput (it only adds resources)
    assert rows[1][2] <= rows[0][2] * 1.02
