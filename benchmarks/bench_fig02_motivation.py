"""Figure 2: the motivating example — bfs, cutcp, stencil, tpacf co-run on
the NVIDIA platform (individual slowdowns, unfairness, throughput)."""

from repro.cl import nvidia_k20m
from repro.harness import format_table, run_workload

WORKLOAD = ("bfs", "cutcp", "stencil", "tpacf")


def test_fig02_motivating_example(benchmark, emit):
    device = nvidia_k20m()

    results = {scheme: run_workload(WORKLOAD, scheme, device, repetitions=3)
               for scheme in ("baseline", "ek", "accelos")}
    benchmark(run_workload, WORKLOAD, "accelos", device, repetitions=1)

    rows = []
    for i, name in enumerate(WORKLOAD):
        rows.append([name] + ["{:.2f}".format(results[s].slowdowns[i])
                              for s in ("baseline", "ek", "accelos")])
    emit(format_table(
        ["kernel", "IS std", "IS EK", "IS accelOS"], rows,
        title="Fig 2a — individual slowdowns (paper: std uneven, "
              "accelOS even)"))

    base = results["baseline"]
    emit(format_table(
        ["scheme", "unfairness", "fairness improvement",
         "throughput speedup"],
        [[s,
          results[s].unfairness,
          base.unfairness / results[s].unfairness,
          base.makespan / results[s].makespan]
         for s in ("baseline", "ek", "accelos")],
        title="Fig 2b/2c — paper: accelOS 5.79x fairer, 1.31x throughput; "
              "EK 1.14x throughput, marginal fairness"))

    assert results["accelos"].unfairness < base.unfairness
