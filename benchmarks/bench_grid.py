"""Full-grid sweep: parallel execution and the content-addressed cache.

The north star demands full scenario x scheme x fleet sweeps that run
"as fast as the hardware allows".  This bench drives the PR 8 driver
backend over the complete grid — every registered traffic scenario,
all three builtin schemes, a heterogeneous two-device fleet — in three
legs, and pins the claims that make the backend trustworthy:

* **determinism** — the parallel leg's ``ResultSet.to_json`` is
  byte-identical to the serial leg's, per scenario (the deterministic
  merge re-emits results in grid order regardless of completion order);
* **speedup** — on a machine with at least ``--workers`` CPUs, the
  parallel cold leg beats serial by ``--min-speedup`` (default 2x at 4
  workers); on smaller machines the ratio is still reported but not
  gated (a 1-core container cannot express parallelism);
* **warm cache is free** — a rerun against the populated cache
  re-simulates *zero* cells (`ResultCache` counters, not wall-clock
  heuristics) and still reproduces the serial bytes.

Doubles as the nightly CI grid probe:

    python benchmarks/bench_grid.py --smoke --json BENCH_grid.json

emits a deterministic JSON report (same seed => bit-identical file on
the same machine).  Raw wall-clock timings are deliberately *excluded*
from the JSON — they vary run to run — the report carries the pass/fail
booleans and cache counters instead.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # CLI invocation: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest

from repro.api import ExperimentSpec, ResultCache, run, warm_caches
from repro.harness import format_table
from repro.workloads.scenarios import SCENARIOS

FULL_COUNT = 384
SMOKE_COUNT = 160
SEED = 2016
LOAD = 1.0
WORKERS = 4
MIN_SPEEDUP = 2.0
SCHEMES = ("baseline", "ek", "accelos")
PLACEMENT = "least-loaded"

# two seeds per scenario: 6 cells per spec, enough independent work for
# a 4-worker pool to overlap
SEEDS = (SEED, SEED + 1)

FLEET = (
    {"id": "fast", "base": "nvidia-k20m"},
    {"id": "slow", "base": "nvidia-k20m",
     "clock_scale": 0.5, "cu_scale": 1.0},
)

REPORT_METRICS = ("antt", "stp", "unfairness", "p99_slowdown")


def grid_specs(count, scenarios=None, seeds=SEEDS):
    """One fleet spec per scenario — together, the full grid."""
    names = sorted(SCENARIOS) if scenarios is None else list(scenarios)
    return [
        ExperimentSpec(scenario=name, schemes=SCHEMES, loads=(LOAD,),
                       seeds=tuple(seeds), count=count, devices=FLEET,
                       placements=(PLACEMENT,), metrics=REPORT_METRICS)
        for name in names
    ]


def run_grid(specs, workers=1, cache=None):
    """Run every spec; returns ``([ResultSet, ...], wall_seconds)``."""
    results = []
    start = time.perf_counter()
    for spec in specs:
        results.append(run(spec, workers=workers, cache_dir=cache))
    return results, time.perf_counter() - start


def grid_report(count, workers=WORKERS, cache_dir=None, scenarios=None):
    """The three-leg sweep: serial, parallel cold cache, warm cache.

    Returns ``(report, timings)`` — timings stay out of the JSON report
    (they are not deterministic), the verdict booleans go in.
    """
    specs = grid_specs(count, scenarios=scenarios)
    # calibration caches warm before any timed leg, so the serial leg is
    # not charged for first-touch fills the parallel leg inherits
    for spec in specs:
        warm_caches(spec)

    serial_results, serial_secs = run_grid(specs, workers=1)

    store = ResultCache(cache_dir)
    parallel_results, parallel_secs = run_grid(specs, workers=workers,
                                               cache=store)
    parallel_matches = all(
        a.to_json() == b.to_json()
        for a, b in zip(serial_results, parallel_results))
    # against a persisted --cache-dir, the "cold" leg may itself hit
    # entries from an earlier invocation (that's the resume feature)
    cold_stores, cold_hits = store.stores, store.hits

    pre_stores, pre_misses = store.stores, store.misses
    warm_results, warm_secs = run_grid(specs, workers=workers, cache=store)
    warm_matches = all(
        a.to_json() == b.to_json()
        for a, b in zip(serial_results, warm_results))
    recomputed = store.stores - pre_stores

    cells = sum(spec.cell_count() for spec in specs)
    cpus = os.cpu_count() or 1
    speedup = serial_secs / parallel_secs if parallel_secs > 0 else 0.0
    report = {
        "count": count,
        "seeds": list(SEEDS),
        "load": LOAD,
        "workers": workers,
        "schemes": list(SCHEMES),
        "placement": PLACEMENT,
        "fleet": list(FLEET),
        "scenarios": [spec.scenario for spec in specs],
        "grid_cells": cells,
        "determinism": {
            "parallel_matches_serial": bool(parallel_matches),
            "warm_matches_serial": bool(warm_matches),
        },
        "cache": {
            "cold_stores": cold_stores,
            "cold_hits": cold_hits,
            "warm_hits": store.hits - cold_hits,
            "warm_misses": store.misses - pre_misses,
            "recomputed": recomputed,
            "warm_zero_recompute": bool(recomputed == 0),
        },
        "results": {
            spec.scenario: results.to_dict()["cells"]
            for spec, results in zip(specs, serial_results)
        },
    }
    timings = {
        "serial_secs": serial_secs,
        "parallel_secs": parallel_secs,
        "warm_secs": warm_secs,
        "speedup": speedup,
        "cpus": cpus,
    }
    return report, timings


def check_grid(report, timings, min_speedup=MIN_SPEEDUP):
    """The CI gate: raise on any broken claim."""
    determinism = report["determinism"]
    if not determinism["parallel_matches_serial"]:
        raise AssertionError(
            "parallel ResultSet.to_json diverged from the serial leg")
    if not determinism["warm_matches_serial"]:
        raise AssertionError(
            "warm-cache ResultSet.to_json diverged from the serial leg")
    cache = report["cache"]
    if cache["cold_stores"] + cache["cold_hits"] != report["grid_cells"]:
        raise AssertionError(
            "cold leg covered {} of {} cells ({} stored + {} "
            "cache hits)".format(
                cache["cold_stores"] + cache["cold_hits"],
                report["grid_cells"], cache["cold_stores"],
                cache["cold_hits"]))
    if not cache["warm_zero_recompute"]:
        raise AssertionError(
            "warm-cache rerun re-simulated {} cells (expected 0)".format(
                cache["recomputed"]))
    # the speedup gate only binds where the hardware can express it: a
    # pool of N workers on fewer than N CPUs time-slices, it cannot win
    if min_speedup > 0 and timings["cpus"] >= report["workers"]:
        if timings["speedup"] < min_speedup:
            raise AssertionError(
                "parallel leg speedup {:.2f}x below the {:.1f}x floor "
                "({} workers, {} cpus)".format(
                    timings["speedup"], min_speedup, report["workers"],
                    timings["cpus"]))


def render(report, timings):
    rows = [
        ["serial", 1, "{:.2f}".format(timings["serial_secs"]), "", ""],
        ["parallel (cold cache)", report["workers"],
         "{:.2f}".format(timings["parallel_secs"]),
         "{:.2f}x".format(timings["speedup"]),
         report["cache"]["cold_stores"]],
        ["parallel (warm cache)", report["workers"],
         "{:.2f}".format(timings["warm_secs"]), "",
         report["cache"]["recomputed"]],
    ]
    tables = [format_table(
        ["leg", "workers", "wall (s)", "speedup", "cells simulated"],
        rows,
        title="Grid sweep — {} scenarios x {} schemes x {} seeds, "
              "count {} ({} cells, {} cpus)".format(
                  len(report["scenarios"]), len(report["schemes"]),
                  len(report["seeds"]), report["count"],
                  report["grid_cells"], timings["cpus"]))]
    metric_rows = []
    for scenario in report["scenarios"]:
        for entry in report["results"][scenario]:
            cell = entry["cell"]
            if cell["seed"] != SEEDS[0]:
                continue
            metric_rows.append(
                [scenario, cell["scheme"]]
                + [entry["metrics"][name] for name in REPORT_METRICS])
    tables.append(format_table(
        ["scenario", "scheme", *REPORT_METRICS], metric_rows,
        title="Grid metrics (seed {})".format(SEEDS[0])))
    return "\n\n".join(tables)


def json_report(report):
    """Deterministic JSON document (stable key order, plain floats;
    wall-clock timings excluded by design — see module docstring)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


# -- pytest entry points (explicit invocation only: bench_* files are
# -- not collected by the tier-1 run) -----------------------------------------

def test_grid_parallel_and_cache_contracts(emit, tmp_path):
    report, timings = grid_report(
        24, cache_dir=tmp_path / "grid-cache",
        scenarios=("steady", "bursty"))
    # the tiny pytest grid asserts every contract except the speedup
    # floor (it needs the full smoke grid and >= `workers` CPUs)
    check_grid(report, timings, min_speedup=0)
    emit(render(report, timings))


# -- CLI entry point (nightly CI grid trajectory) ------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        description="full-grid sweep: parallel driver + result cache")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized sweep (count {} instead of "
                             "{})".format(SMOKE_COUNT, FULL_COUNT))
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_grid.json)")
    parser.add_argument("--count", type=int, default=None,
                        help="requests per stream (overrides "
                             "--smoke sizing)")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="pool size for the parallel legs "
                             "(default {})".format(WORKERS))
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist the result cache here instead of "
                             "a throwaway directory (resumable sweeps)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="parallel-leg speedup floor when the "
                             "machine has >= workers CPUs; 0 disables "
                             "(default {})".format(MIN_SPEEDUP))
    args = parser.parse_args(argv)

    count = args.count if args.count is not None else \
        (SMOKE_COUNT if args.smoke else FULL_COUNT)
    scratch = None
    if args.cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="bench_grid_cache_")
    try:
        report, timings = grid_report(count, workers=args.workers,
                                      cache_dir=args.cache_dir or scratch)
        print(render(report, timings))
        check_grid(report, timings, min_speedup=args.min_speedup)
        if args.json:
            Path(args.json).write_text(json_report(report),
                                       encoding="utf-8")
            print("wrote {}".format(args.json))
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
