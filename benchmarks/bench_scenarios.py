"""Scenario sweep: tail latency of the three schemes under diverse traffic.

Runs every registered traffic scenario (steady / bursty MMPP / diurnal /
heavy-tailed / multi-tenant — :mod:`repro.workloads.scenarios`) through
the open-system harness under all three sharing schemes and reports the
tail statistics that mean ANTT/STP hide: p50/p95/p99 per-request slowdown,
p99 queueing delay and the max/mean ratio.  Each scenario is one
declarative :class:`repro.api.ExperimentSpec` run through
``repro.api.run`` (docs/API.md); the emitted JSON document is unchanged
from the pre-API harness (bit-identical streams and metrics).

The qualitative expectation extends the paper's claims to realistic
traffic: FIFO queueing hurts most when arrivals bunch (bursty, diurnal
peaks) — its p99 slowdown balloons while accelOS's continuous
re-allocation keeps the tail close to the median.

Doubles as the CI perf-trajectory probe:

    python benchmarks/bench_scenarios.py --smoke --json BENCH_scenarios.json

emits a deterministic JSON report (same seed => bit-identical file) with
p99 slowdown per scenario per scheme.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # CLI invocation: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ExperimentSpec, device_from_name, run
from repro.harness import TAIL_HEADERS, format_table
from repro.workloads import SCENARIOS

STREAM_LENGTH = 24
SMOKE_STREAM_LENGTH = 10
SEED = 2016
LOAD = 1.2  # past saturation so queueing tails are non-trivial
SCHEME_ORDER = ("baseline", "ek", "accelos")

DEVICE_BASE = "nvidia-k20m"
DEVICE_NAME = device_from_name(DEVICE_BASE).name


def scenario_spec(scenario_name, count=STREAM_LENGTH, seed=SEED, load=LOAD):
    """One scenario's declarative campaign (all schemes, one stream)."""
    return ExperimentSpec(
        scenario=scenario_name,
        schemes=SCHEME_ORDER,
        loads=(load,),
        seeds=(seed,),
        count=count,
        devices=({"id": DEVICE_BASE, "base": DEVICE_BASE},),
        metrics=("antt", "stp", "unfairness", "p99_slowdown"),
    )


def sweep(count=STREAM_LENGTH, seed=SEED, load=LOAD, scenario_names=None):
    """{scenario: {scheme: metrics dict}} over the registered scenarios."""
    names = list(scenario_names) if scenario_names else sorted(SCENARIOS)
    report = {}
    for scenario_name in names:
        results = run(scenario_spec(scenario_name, count=count, seed=seed,
                                    load=load))
        per_scheme = {}
        for scheme in SCHEME_ORDER:
            result = results.get(scheme=scheme)
            per_scheme[scheme] = {
                "slowdown": result.slowdown_tails.as_dict(),
                "queueing_delay": result.queueing_tails.as_dict(),
                "antt": result.antt,
                "stp": result.stp,
                "unfairness": result.unfairness,
            }
        report[scenario_name] = per_scheme
    return report


def report_rows(report):
    rows = []
    for scenario_name, per_scheme in report.items():
        for scheme in SCHEME_ORDER:
            m = per_scheme[scheme]
            s = m["slowdown"]
            rows.append([scenario_name, scheme, s["p50"], s["p95"],
                         s["p99"], s["max_over_mean"],
                         m["queueing_delay"]["p99"] * 1e3, m["antt"]])
    return rows


def render(report, device_name, count, seed, load):
    return format_table(
        ["scenario", "scheme", *TAIL_HEADERS, "queue p99 (ms)", "ANTT"],
        report_rows(report),
        title="Scenario traffic sweep on {} ({} requests, load {}, seed {})"
        .format(device_name, count, load, seed))


def json_report(report, device_name, count, seed, load):
    """Deterministic JSON document (stable key order, plain floats)."""
    return json.dumps({
        "device": device_name,
        "count": count,
        "seed": seed,
        "load": load,
        "schemes": list(SCHEME_ORDER),
        "scenarios": report,
    }, sort_keys=True, indent=2) + "\n"


# -- pytest entry point -------------------------------------------------------

def test_scenario_traffic_sweep(benchmark, emit):
    report = sweep()
    emit(render(report, DEVICE_NAME, STREAM_LENGTH, SEED, LOAD))

    for scenario_name, per_scheme in report.items():
        for scheme, metrics in per_scheme.items():
            s = metrics["slowdown"]
            # percentiles are order statistics: monotone by construction
            assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"], \
                (scenario_name, scheme)
            assert s["count"] == STREAM_LENGTH
            assert metrics["queueing_delay"]["p50"] >= 0.0
        # the tail claim: under every traffic shape, accelOS's continuous
        # re-allocation keeps the worst requests closer to the median than
        # FIFO queueing does
        assert (per_scheme["accelos"]["slowdown"]["p99"]
                < per_scheme["baseline"]["slowdown"]["p99"]), scenario_name

    # same seed => bit-identical report, twice in a row
    again = sweep()
    assert json_report(again, DEVICE_NAME, STREAM_LENGTH, SEED, LOAD) \
        == json_report(report, DEVICE_NAME, STREAM_LENGTH, SEED, LOAD)

    benchmark(lambda: sweep(count=SMOKE_STREAM_LENGTH,
                            scenario_names=["bursty"]))


# -- CLI entry point (CI perf trajectory) -------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        description="scenario traffic sweep with tail-latency report")
    parser.add_argument("--smoke", action="store_true",
                        help="small streams for CI ({} requests)".format(
                            SMOKE_STREAM_LENGTH))
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_scenarios.json)")
    parser.add_argument("--count", type=int, default=None,
                        help="requests per stream (default {})".format(
                            STREAM_LENGTH))
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--load", type=float, default=LOAD)
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME", choices=sorted(SCENARIOS),
                        help="restrict to one scenario (repeatable)")
    args = parser.parse_args(argv)

    count = args.count if args.count is not None else \
        (SMOKE_STREAM_LENGTH if args.smoke else STREAM_LENGTH)
    report = sweep(count=count, seed=args.seed, load=args.load,
                   scenario_names=args.scenarios)
    print(render(report, DEVICE_NAME, count, args.seed, args.load))
    if args.json:
        document = json_report(report, DEVICE_NAME, count, args.seed,
                               args.load)
        Path(args.json).write_text(document, encoding="utf-8")
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
