"""Section 8.5: tiny executions (2/4/8 work groups) stay within a few
percent of standard OpenCL."""

import pytest

from benchmarks.conftest import DEVICES
from repro.accelos.adaptive import effective_chunk
from repro.harness import format_table
from repro.harness.experiment import chunk_for_profile
from repro.sim import ExecutionMode, GPUSimulator
from repro.workloads import profile_by_name


def tiny_spec(name, n_groups):
    profile = profile_by_name(name)
    spec = profile.exec_spec()
    costs = spec.wg_costs[:n_groups]
    return spec.__class__(
        spec.name, spec.wg_threads, costs, spec.mem_rate_per_wg,
        spec.registers_per_thread, spec.local_mem_per_wg,
        sat_occupancy=spec.sat_occupancy)


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_sec85_small_kernel_executions(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    rows = []
    deltas = []
    for name in ("bfs", "spmv", "tpacf"):
        for n_groups in (2, 4, 8):
            spec = tiny_spec(name, n_groups)
            iso = GPUSimulator(device).run([spec]).makespan
            chunk = effective_chunk(
                chunk_for_profile(profile_by_name(name)), n_groups, n_groups)
            accel = spec.with_mode(ExecutionMode.ACCELOS,
                                   physical_groups=n_groups, chunk=chunk)
            t = GPUSimulator(device).run([accel]).makespan
            delta = 100 * (t - iso) / iso
            deltas.append(abs(delta))
            rows.append([name, n_groups, iso * 1e6, t * 1e6,
                         "{:+.2f}%".format(delta)])
    emit(format_table(
        ["kernel", "WGs", "std (us)", "accelOS (us)", "delta"],
        rows, title="Sec 8.5 ({}) — tiny executions (paper: differences "
                    "under 3%)".format(device_name)))

    benchmark(GPUSimulator(device).run, [tiny_spec("bfs", 4)])

    assert max(deltas) < 3.0
