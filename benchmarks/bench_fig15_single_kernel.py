"""Figure 15: accelOS single-kernel performance impact (naive vs optimized).

The paper: naive geomean 0.98x (NVIDIA) / 0.99x (AMD); optimized 1.07x /
1.10x — the dynamic scheduler's load balancing more than compensates the
dequeue overhead once §6.4 chunking amortises the atomics.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEVICES
from repro.accelos.adaptive import SchedulingPolicy
from repro.harness import format_table, run_single_kernel
from repro.workloads import PROFILE_NAMES


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig15_single_kernel_impact(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    rows = []
    speedups = {"naive": [], "optimized": []}
    for name in PROFILE_NAMES:
        row = [name]
        for policy, key in ((SchedulingPolicy.NAIVE, "naive"),
                            (SchedulingPolicy.ADAPTIVE, "optimized")):
            t, iso = run_single_kernel(name, device, policy=policy)
            speedup = iso / t
            speedups[key].append(speedup)
            row.append(speedup)
        rows.append(row)
    geo_naive = float(np.exp(np.mean(np.log(speedups["naive"]))))
    geo_opt = float(np.exp(np.mean(np.log(speedups["optimized"]))))
    rows.append(["GEOMEAN", geo_naive, geo_opt])
    emit(format_table(
        ["kernel", "naive speedup", "optimized speedup"], rows,
        title="Fig 15 ({}) — accelOS vs standard OpenCL, single kernel "
              "(paper geomean: naive ~0.98x, optimized 1.07-1.10x)"
              .format(device_name)))

    benchmark(run_single_kernel, "sgemm", device)

    # single-kernel impact is the weakest reproduction (docs/PAPER_MAPPING.md, deviation 2):
    # our hardware model's per-CU queues balance better than real firmware,
    # so the dynamic scheduler's +7-10% win does not materialise; we assert
    # the defensible core: accelOS alone costs at most a few percent
    assert geo_opt >= geo_naive - 0.05
    assert geo_opt >= 0.93
    # and never catastrophically slows any kernel (paper's floor is 0.95;
    # our coarse chunk quantisation dips lower on one small kernel)
    assert min(speedups["optimized"]) > 0.7
