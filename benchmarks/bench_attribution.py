"""Attribution plane: who induced whose queueing delay, and who pays
for migrations.

The paper's fairness story (§2, §7) is told from the scheduler's side —
accelOS equalises progress across tenants.  The attribution plane tells
it from the *accounting* side: a per-tenant ledger rides along with the
open-system run and decomposes every request's queueing delay into the
shares induced by each tenant's outstanding work, integrates per-tenant
resident bytes per device, and charges migration penalties to the tenant
whose backlog triggered the move.  This bench runs the bursty
multi-tenant scenario (heavy "batch" tenant on an MMPP burst model,
steady "interactive"/"background" tenants) and pins the two claims the
audit must reproduce deterministically:

* **aggressor identification** — under the standard stack at the audit
  operating point, the fairness audit ranks the bursty heavy tenant
  ("batch") as the top aggressor: its bursts induce more p99 queueing
  delay on the other tenants than anyone else's traffic does;
* **induced-p99 quantification** — under accelOS the *same audit on the
  same traffic* shows cross-tenant induced p99 collapsing by orders of
  magnitude: space sharing drains concurrently, so one tenant's burst
  no longer serialises behind another's backlog.

The fleet campaign adds the migration ledger: with work-stealing
rebalancing on a fast+slow fleet, the penalty of each migration is
charged to the tenant dominating the source device's outstanding work —
the audit shows "batch" paying for the rebalance its burst forced.

Doubles as the CI perf-trajectory probe:

    python benchmarks/bench_attribution.py --smoke --json BENCH_attribution.json

emits a deterministic JSON report (same seed => bit-identical file) with
the single-device and fleet fairness audits, baseline vs accelOS.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # CLI invocation: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest

from repro.api import ExperimentSpec, run
from repro.harness import attribution_table, format_table

STREAM_LENGTH = 48
SMOKE_STREAM_LENGTH = 24
SEED = 2016
LOAD = 1.2
FLEET_LOAD = 1.5
SCENARIO = "multi-tenant"
SCHEMES = ("baseline", "accelos")
# the bursty heavy tenant of the multi-tenant scenario (3:2:1 weights,
# MMPP burst model) — the audit must identify it as the top aggressor
AGGRESSOR = "batch"

FLEET = (
    {"id": "fast", "base": "nvidia-k20m"},
    {"id": "slow", "base": "nvidia-k20m",
     "clock_scale": 0.4, "cu_scale": 0.5},
)

AUDIT_METRICS = ("antt", "tenant_occupancy", "induced_delay_matrix",
                 "attribution_summary")


def audit_spec(count=STREAM_LENGTH, seed=SEED, load=LOAD):
    """Single-device audit: both schemes over the same bursty
    multi-tenant stream, ledger attached (one declarative spec)."""
    return ExperimentSpec(
        scenario=SCENARIO,
        schemes=SCHEMES,
        loads=(load,),
        seeds=(seed,),
        count=count,
        attribution=True,
        metrics=AUDIT_METRICS,
    )


def fleet_audit_spec(count=STREAM_LENGTH, seed=SEED, load=FLEET_LOAD):
    """Fleet audit: work-stealing online placement on a fast+slow fleet,
    pushed past saturation so rebalancing (and its charging) kicks in."""
    return ExperimentSpec(
        scenario=SCENARIO,
        schemes=SCHEMES,
        loads=(load,),
        seeds=(seed,),
        count=count,
        devices=FLEET,
        placements=("work-stealing",),
        placement_mode="online",
        rebalance="work-stealing",
        attribution=True,
        metrics=AUDIT_METRICS,
    )


def _audit_dict(report):
    """One AttributionReport as plain deterministic data."""
    return {
        "tenants": list(report.tenants),
        "aggressor_ranking": [[tenant, induced]
                              for tenant, induced
                              in report.aggressor_ranking()],
        "induced_p99": {victim: dict(report.induced_p99[victim])
                        for victim in report.tenants},
        "occupancy_share": dict(report.occupancy_share),
        "migration_costs": dict(report.migration_costs),
        "tenant_occupancy": report.tenant_occupancy,
        "max_cross_tenant_induced_p99":
            report.max_cross_tenant_induced_p99,
        "cross_tenant_induced_share": report.cross_tenant_induced_share,
        "requests": report.requests,
        "migrations": report.migrations,
    }


def audit_report(count=STREAM_LENGTH, seed=SEED, load=LOAD):
    """{scheme: audit} for the single-device campaign."""
    results = run(audit_spec(count=count, seed=seed, load=load))
    return {scheme: _audit_dict(results.get(scheme=scheme).attribution)
            for scheme in SCHEMES}


def fleet_audit_report(count=STREAM_LENGTH, seed=SEED, load=FLEET_LOAD):
    """{scheme: audit} for the fleet campaign."""
    results = run(fleet_audit_spec(count=count, seed=seed, load=load))
    return {scheme: _audit_dict(results.get(scheme=scheme).attribution)
            for scheme in SCHEMES}


def audit_rows(audits):
    """Summary rows over {scheme: audit}: one row per scheme."""
    rows = []
    for scheme, audit in audits.items():
        top_tenant, top_induced = audit["aggressor_ranking"][0]
        rows.append([scheme, top_tenant, top_induced * 1e3,
                     audit["max_cross_tenant_induced_p99"] * 1e3,
                     audit["cross_tenant_induced_share"],
                     audit["tenant_occupancy"],
                     audit["migrations"]])
    return rows


AUDIT_HEADERS = ["scheme", "top aggressor", "induced ms",
                 "max cross p99 ms", "cross share", "occupancy",
                 "migrations"]


def test_audit_identifies_aggressor(benchmark, emit):
    """The single-device fairness audit, pinned by CI.

    Under the standard stack the bursty heavy tenant is the top
    aggressor of the audit's induced-delay ranking; under accelOS the
    same traffic's cross-tenant induced p99 collapses (space sharing
    drains bursts concurrently instead of serialising victims behind
    them).  Occupancy shares are a probability distribution over
    tenants at every operating point — the conservation the ledger
    enforces event-by-event, restated at the report surface.
    """
    results = run(audit_spec())
    baseline = results.get(scheme="baseline").attribution
    accelos = results.get(scheme="accelos").attribution

    for scheme, report in (("baseline", baseline), ("accelos", accelos)):
        emit(attribution_table(
            report,
            title="Fairness audit — {} on one K20m ({} requests, load {}, "
                  "seed {})".format(scheme, STREAM_LENGTH, LOAD, SEED)))

    # aggressor identification: the audit names the bursty heavy tenant
    assert baseline.aggressor_ranking()[0][0] == AGGRESSOR
    # induced-p99 quantification: accelOS collapses cross-tenant induced
    # delay on the identical stream (orders of magnitude, assert 10x)
    assert accelos.max_cross_tenant_induced_p99 \
        < baseline.max_cross_tenant_induced_p99 / 10
    # occupancy shares are a distribution: non-negative, sum to one
    for report in (baseline, accelos):
        shares = report.occupancy_share
        assert all(share >= 0.0 for share in shares.values())
        assert sum(shares.values()) == pytest.approx(1.0)
        assert report.requests == STREAM_LENGTH

    # the timed probe: one attributed run over a pre-built spec cell —
    # the ledger must ride along without dominating the simulation (a
    # fresh ledger per round; a ledger instance audits exactly one run)
    from repro.api import build_device, build_stream
    from repro.attribution import AttributionLedger
    from repro.harness import OpenSystemExperiment

    spec = audit_spec()
    device = build_device(spec.devices[0])
    stream = build_stream(spec, LOAD, SEED, 0, device=device)
    experiment = OpenSystemExperiment(device)
    benchmark(lambda: experiment.run(
        stream, "accelos", ledger=AttributionLedger([device.name])))

    # determinism: the audit is a pure function of the spec
    again = run(ExperimentSpec.from_json(audit_spec().to_json()))
    assert again.get(scheme="baseline").attribution.to_dict() \
        == baseline.to_dict()


def test_fleet_audit_charges_migrations(emit):
    """The fleet fairness audit: migration costs land on the aggressor.

    Work-stealing rebalancing on the saturated fast+slow fleet migrates
    backlog off the device the batch tenant's burst swamped — the audit
    charges that penalty to "batch", not to the victims that happened to
    be queued behind it.  Both schemes identify the same top aggressor,
    and accelOS keeps its induced-delay collapse fleet-wide.
    """
    results = run(fleet_audit_spec())
    baseline = results.get(scheme="baseline").attribution
    accelos = results.get(scheme="accelos").attribution

    for scheme, report in (("baseline", baseline), ("accelos", accelos)):
        emit(attribution_table(
            report,
            title="Fleet fairness audit — {} on fast+slow, work-stealing "
                  "({} requests, load {}, seed {})".format(
                      scheme, STREAM_LENGTH, FLEET_LOAD, SEED)))

    assert baseline.aggressor_ranking()[0][0] == AGGRESSOR
    assert accelos.aggressor_ranking()[0][0] == AGGRESSOR
    assert accelos.max_cross_tenant_induced_p99 \
        < baseline.max_cross_tenant_induced_p99 / 10

    # the migration ledger: the standard stack's rebalance is charged,
    # and every cent lands on the aggressor tenant
    assert baseline.migrations >= 1
    charged = {tenant: cost
               for tenant, cost in baseline.migration_costs.items()
               if cost > 0.0}
    assert charged and set(charged) == {AGGRESSOR}

    # the dominant occupant is the heavy tenant under either scheme —
    # byte.seconds attribution follows the 3:2:1 traffic weights
    for report in (baseline, accelos):
        shares = report.occupancy_share
        assert max(shares, key=lambda t: (shares[t], t)) == AGGRESSOR


def test_audit_report_is_deterministic():
    """The JSON surface replays bit-for-bit: same seed, same bytes."""
    first = json_report(audit_report(count=SMOKE_STREAM_LENGTH),
                        fleet_audit_report(count=SMOKE_STREAM_LENGTH),
                        SMOKE_STREAM_LENGTH, SEED)
    second = json_report(audit_report(count=SMOKE_STREAM_LENGTH),
                         fleet_audit_report(count=SMOKE_STREAM_LENGTH),
                         SMOKE_STREAM_LENGTH, SEED)
    assert first == second


# -- CLI entry point (CI perf trajectory) -------------------------------------

def render(audits, fleet_audits, count, seed):
    tables = [
        format_table(
            AUDIT_HEADERS, audit_rows(audits),
            title="Fairness audit — one K20m, bursty multi-tenant, "
                  "load {}, {} requests, seed {}".format(LOAD, count, seed)),
        format_table(
            AUDIT_HEADERS, audit_rows(fleet_audits),
            title="Fleet fairness audit — fast+slow, work-stealing, "
                  "load {}, {} requests, seed {}".format(
                      FLEET_LOAD, count, seed)),
    ]
    return "\n\n".join(tables)


def json_report(audits, fleet_audits, count, seed):
    """Deterministic JSON document (stable key order, plain floats)."""
    return json.dumps({
        "seed": seed,
        "scenario": SCENARIO,
        "aggressor": AGGRESSOR,
        "single_device": {
            "load": LOAD, "count": count, "schemes": audits,
        },
        "fleet": {
            "load": FLEET_LOAD, "count": count, "schemes": fleet_audits,
        },
    }, sort_keys=True, indent=2) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="per-tenant fairness audit: aggressor identification "
                    "and induced-delay quantification")
    parser.add_argument("--smoke", action="store_true",
                        help="small streams for CI ({} requests)".format(
                            SMOKE_STREAM_LENGTH))
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_attribution.json)")
    parser.add_argument("--count", type=int, default=None,
                        help="requests per stream (default {})".format(
                            STREAM_LENGTH))
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    count = args.count if args.count is not None else \
        (SMOKE_STREAM_LENGTH if args.smoke else STREAM_LENGTH)
    audits = audit_report(count=count, seed=args.seed)
    fleet_audits = fleet_audit_report(count=count, seed=args.seed)
    print(render(audits, fleet_audits, count, args.seed))
    if args.json:
        document = json_report(audits, fleet_audits, count, args.seed)
        Path(args.json).write_text(document, encoding="utf-8")
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
