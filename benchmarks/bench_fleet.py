"""Fleet evaluation: cross-device placement on homogeneous and
heterogeneous fleets.

Beyond the paper (which arbitrates a single accelerator), this bench
scales the open-system methodology to a *fleet*: a multi-tenant request
stream is placed across devices by each registered placement policy,
every device runs its own §3 allocator, and fleet-wide
STP/ANTT/unfairness/queueing delay are reported alongside the per-device
split.  The whole campaign is one declarative
:class:`repro.api.ExperimentSpec` per fleet — topology (derated
heterogeneity included), placement grid, placement mode and re-balance
config are data, not wiring.

Expected shape of the results:

* on a **homogeneous** fleet, round-robin is near-optimal (it is exactly
  load balancing), so least-loaded only ties it;
* on a **heterogeneous** fleet (fast + derated slow device), round-robin
  sends half the stream to the slow device regardless of backlog — its
  queue grows and fleet ANTT suffers — while least-loaded placement
  routes by estimated completion and wins on ANTT (the acceptance
  criterion of the PR 2 subsystem);
* affinity placement trades a little balance for locality: migrations are
  rare and bounded by the penalty;
* under **bursty multi-tenant** traffic the closed loop earns its keep:
  the offline pre-pass misjudges how fast an accelOS device drains (it
  assumes serial service; §3 space sharing drains concurrently), so the
  burst-aware *online* policy — live backlog + burst detection —
  restores accelOS's fleet-wide unfairness edge over the standard stack
  that PR 4 observed being lost (the ROADMAP open item this subsystem
  resolves), without regressing ANTT or tail slowdown.

Doubles as the CI perf-trajectory probe:

    python benchmarks/bench_fleet.py --smoke --json BENCH_fleet.json

emits a deterministic JSON report (same seed => bit-identical file) with
the placement sweep per fleet and the burst-aware closed-loop campaign.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # CLI invocation: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest

from repro.api import (ExperimentSpec, build_device, build_stream,
                       placement_from_name, placement_names, run)
from repro.harness import FleetOpenSystemExperiment, format_table
from repro.sim import DeviceFleet

STREAM_LENGTH = 32
SMOKE_STREAM_LENGTH = 12
SEED = 2016
LOAD = 1.0
SCHEME = "accelos"
SCENARIO = "multi-tenant"

# the burst campaign: the same bursty multi-tenant scenario pushed past
# fleet saturation, where placement decides fleet-wide fairness
BURST_LOAD = 1.5
BURST_STREAM_LENGTH = 48
BURST_SCHEMES = ("baseline", "accelos")
BURST_PLACEMENTS = ("least-loaded", "burst-aware")

FLEETS = {
    "homogeneous 2x K20m": (
        {"id": "k20m-0", "base": "nvidia-k20m"},
        {"id": "k20m-1", "base": "nvidia-k20m"},
    ),
    "heterogeneous fast+slow": (
        {"id": "fast", "base": "nvidia-k20m"},
        {"id": "slow", "base": "nvidia-k20m",
         "clock_scale": 0.4, "cu_scale": 0.5},
    ),
}


def spec_for(fleet_name, schemes=(SCHEME,), placements=None,
             scenario_name=SCENARIO, count=STREAM_LENGTH, seed=SEED,
             load=LOAD):
    return ExperimentSpec(
        scenario=scenario_name,
        schemes=schemes,
        loads=(load,),
        seeds=(seed,),
        count=count,
        devices=FLEETS[fleet_name],
        placements=placements if placements is not None
        else placement_names(),
        metrics=("unfairness", "stp", "antt", "mean_queueing_delay"),
    )


def burst_spec(count=BURST_STREAM_LENGTH, seed=SEED, load=BURST_LOAD):
    """The closed-loop campaign: offline least-loaded vs burst-aware
    online placement, baseline vs accelOS, on the fast+slow fleet under
    bursty multi-tenant traffic (one declarative spec)."""
    return ExperimentSpec(
        scenario=SCENARIO,
        schemes=BURST_SCHEMES,
        loads=(load,),
        seeds=(seed,),
        count=count,
        devices=FLEETS["heterogeneous fast+slow"],
        placements=BURST_PLACEMENTS,
        metrics=("unfairness", "antt", "p99_slowdown"),
    )


def placement_report(count=STREAM_LENGTH, seed=SEED, load=LOAD):
    """{fleet: {placement: metrics}} for the placement sweep."""
    report = {}
    for fleet_name in FLEETS:
        results = run(spec_for(fleet_name, count=count, seed=seed,
                               load=load))
        per_placement = {}
        for placement in placement_names():
            result = results.get(placement=placement)
            per_placement[placement] = {
                "unfairness": result.overall.unfairness,
                "stp": result.overall.stp,
                "antt": result.overall.antt,
                "mean_queueing_delay": result.overall.mean_queueing_delay,
                "migrations": result.migrations,
                "rebalances": result.rebalances,
                "device_share": dict(result.device_share),
            }
        report[fleet_name] = per_placement
    return report


def burst_report(count=BURST_STREAM_LENGTH, seed=SEED, load=BURST_LOAD):
    """{scheme: {placement: metrics}} for the closed-loop campaign."""
    results = run(burst_spec(count=count, seed=seed, load=load))
    return {
        scheme: {
            placement: {
                "unfairness": results.unfairness(scheme=scheme,
                                                 placement=placement),
                "antt": results.antt(scheme=scheme, placement=placement),
                "p99_slowdown": results.p99_slowdown(scheme=scheme,
                                                     placement=placement),
            }
            for placement in BURST_PLACEMENTS
        }
        for scheme in BURST_SCHEMES
    }


def burst_rows(report):
    return [[scheme, placement, metrics["unfairness"], metrics["antt"],
             metrics["p99_slowdown"]]
            for scheme, per_placement in report.items()
            for placement, metrics in per_placement.items()]


@pytest.mark.parametrize("fleet_name", list(FLEETS))
def test_fleet_placement_sweep(benchmark, emit, fleet_name):
    results = run(spec_for(fleet_name))

    rows = []
    for placement in placement_names():
        result = results.get(placement=placement)
        share = " ".join("{}={:.0%}".format(device_id, fraction)
                         for device_id, fraction
                         in result.device_share.items())
        rows.append([placement, result.overall.unfairness,
                     result.overall.stp, result.overall.antt,
                     result.overall.mean_queueing_delay * 1e3,
                     result.migrations, share])
    emit(format_table(
        ["placement", "unfairness", "STP", "ANTT", "queue delay (ms)",
         "migrations", "device share"],
        rows,
        title="Fleet placement sweep — {} ({} {} requests, load {}, seed {})"
        .format(fleet_name, STREAM_LENGTH, SCHEME, LOAD, SEED)))

    # the timed probe keeps the pre-port target exactly: one scheme under
    # one placement over a pre-built fleet and stream — spec plumbing
    # (validation, device build, calibration, stream generation) stays
    # outside the measured region.  build_stream is the driver's own
    # stream derivation, so the probe simulates the same workload as the
    # asserted results above.
    spec = spec_for(fleet_name)
    fleet = DeviceFleet([(entry.id, build_device(entry))
                         for entry in spec.devices])
    stream = build_stream(spec, LOAD, SEED, 0, fleet=fleet)
    benchmark(FleetOpenSystemExperiment(fleet).run, stream, SCHEME,
              placement_from_name("least-loaded"))

    least_loaded = results.get(placement="least-loaded")
    round_robin = results.get(placement="round-robin")
    if "heterogeneous" in fleet_name:
        # the acceptance criterion: load-aware placement beats blind
        # round-robin on ANTT when devices differ in speed
        assert least_loaded.overall.antt < round_robin.overall.antt
    else:
        # on identical devices round-robin IS load balancing: least-loaded
        # must stay in the same ballpark, not unlock anything
        assert least_loaded.overall.antt \
            < round_robin.overall.antt * 1.25

    # conservation: every request served exactly once, on some device
    for _, result in results:
        assert len(result.overall.records) == STREAM_LENGTH
        assert sum(len(r.records) for r in result.per_device.values()) \
            == STREAM_LENGTH

    # determinism: the whole campaign is a pure function of the spec
    again = run(spec_for(fleet_name, placements=("least-loaded",)))
    assert again.antt(placement="least-loaded") == least_loaded.overall.antt
    assert [r.finish for r in again.records(placement="least-loaded")] \
        == [r.finish for r in least_loaded.overall.records]


def test_fleet_schemes_ranked(emit):
    """accelOS keeps its single-device ranking when scaled to a fleet.

    Steady traffic: the ranking claim mirrors the single-device bench.
    """
    results = run(spec_for("heterogeneous fast+slow",
                           schemes=("baseline", "ek", "accelos"),
                           placements=("least-loaded",),
                           scenario_name="steady"))
    rows = [[scheme, results.unfairness(scheme=scheme),
             results.stp(scheme=scheme), results.antt(scheme=scheme),
             results.metric("mean_queueing_delay", scheme=scheme) * 1e3]
            for scheme in ("baseline", "ek", "accelos")]
    emit(format_table(
        ["scheme", "unfairness", "STP", "ANTT", "queue delay (ms)"],
        rows,
        title="Fleet schemes — heterogeneous fast+slow, least-loaded "
              "placement"))
    assert results.unfairness(scheme="accelos") \
        < results.unfairness(scheme="baseline")
    assert results.antt(scheme="accelos") < results.antt(scheme="ek")


def test_fleet_schemes_ranked_under_bursty_multi_tenant(emit):
    """The rankings that survive realistic traffic, pinned by CI.

    Under bursty multi-tenant surges on a fast+slow fleet, accelOS still
    wins on ANTT and tail slowdown against both baselines — but its
    *unfairness* edge over the standard stack does NOT survive (the
    fleet-wide slowdown spread is dominated by which device a burst
    lands on, not by per-device sharing; see ROADMAP open items).  This
    test asserts the former so a regression is visible, and documents
    the latter instead of pretending it holds.
    """
    results = run(spec_for("heterogeneous fast+slow",
                           schemes=("baseline", "ek", "accelos"),
                           placements=("least-loaded",)))
    rows = [[scheme, results.unfairness(scheme=scheme),
             results.antt(scheme=scheme),
             results.p99_slowdown(scheme=scheme)]
            for scheme in ("baseline", "ek", "accelos")]
    emit(format_table(
        ["scheme", "unfairness", "ANTT", "p99 slowdown"],
        rows,
        title="Fleet schemes — heterogeneous, bursty multi-tenant "
              "traffic"))
    assert results.antt(scheme="accelos") < results.antt(scheme="baseline")
    assert results.antt(scheme="accelos") < results.antt(scheme="ek")
    assert results.p99_slowdown(scheme="accelos") \
        < results.p99_slowdown(scheme="baseline")


def test_burst_aware_online_restores_unfairness_edge(emit):
    """The resolution of the ROADMAP open item pinned by the test above.

    PR 4 observed that under bursty multi-tenant traffic on the fast+slow
    fleet, accelOS's *unfairness* edge over the standard stack does not
    survive offline placement: fleet-wide slowdown spread is dominated by
    which device a burst lands on.  With the closed loop's burst-aware
    online policy (live backlog + burst detection), accelOS's unfairness
    edge over the baseline is restored — and the online policy never
    regresses accelOS's ANTT or p99 against static least-loaded.

    The whole campaign is one JSON-serializable ExperimentSpec through
    ``repro.api.run`` (the acceptance criterion's reproduction path).
    """
    spec = burst_spec()
    report = burst_report()
    emit(format_table(
        ["scheme", "placement", "unfairness", "ANTT", "p99 slowdown"],
        burst_rows(report),
        title="Closed-loop fleet — heterogeneous fast+slow, bursty "
              "multi-tenant traffic, load {}".format(BURST_LOAD)))

    accel_online = report["accelos"]["burst-aware"]
    accel_static = report["accelos"]["least-loaded"]
    # the restored edge: fleet-wide unfairness beats the standard stack
    # under either placement, and the policy also beats accelOS's own
    # static placement
    assert accel_online["unfairness"] \
        < report["baseline"]["least-loaded"]["unfairness"]
    assert accel_online["unfairness"] \
        < report["baseline"]["burst-aware"]["unfairness"]
    assert accel_online["unfairness"] < accel_static["unfairness"]
    # no regression against static least-loaded on the headline metrics
    assert accel_online["antt"] <= accel_static["antt"]
    assert accel_online["p99_slowdown"] <= accel_static["p99_slowdown"]

    # the campaign reproduces through the serialized spec byte-for-byte
    replayed = run(ExperimentSpec.from_json(spec.to_json()))
    assert replayed.unfairness(scheme="accelos", placement="burst-aware") \
        == accel_online["unfairness"]
    assert replayed.p99_slowdown(scheme="accelos",
                                 placement="burst-aware") \
        == accel_online["p99_slowdown"]


# -- CLI entry point (CI perf trajectory) -------------------------------------

def render(placements, bursts, count, burst_count, seed):
    tables = []
    for fleet_name, per_placement in placements.items():
        rows = [[placement, m["unfairness"], m["stp"], m["antt"],
                 m["mean_queueing_delay"] * 1e3, m["migrations"],
                 m["rebalances"]]
                for placement, m in per_placement.items()]
        tables.append(format_table(
            ["placement", "unfairness", "STP", "ANTT",
             "queue delay (ms)", "migrations", "rebalances"],
            rows,
            title="Fleet placement sweep — {} ({} {} requests, load {}, "
                  "seed {})".format(fleet_name, count, SCHEME, LOAD, seed)))
    tables.append(format_table(
        ["scheme", "placement", "unfairness", "ANTT", "p99 slowdown"],
        burst_rows(bursts),
        title="Closed-loop campaign — bursty multi-tenant, load {}, {} "
              "requests, seed {}".format(BURST_LOAD, burst_count, seed)))
    return "\n\n".join(tables)


def json_report(placements, bursts, count, burst_count, seed):
    """Deterministic JSON document (stable key order, plain floats)."""
    return json.dumps({
        "seed": seed,
        "placement_sweep": {
            "scheme": SCHEME, "scenario": SCENARIO, "load": LOAD,
            "count": count, "fleets": placements,
        },
        "closed_loop": {
            "scenario": SCENARIO, "load": BURST_LOAD,
            "count": burst_count, "schemes": bursts,
        },
    }, sort_keys=True, indent=2) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fleet placement sweep + closed-loop burst campaign")
    parser.add_argument("--smoke", action="store_true",
                        help="small streams for CI ({} requests)".format(
                            SMOKE_STREAM_LENGTH))
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_fleet.json)")
    parser.add_argument("--count", type=int, default=None,
                        help="requests per stream (default {})".format(
                            STREAM_LENGTH))
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    count = args.count if args.count is not None else \
        (SMOKE_STREAM_LENGTH if args.smoke else STREAM_LENGTH)
    burst_count = args.count if args.count is not None else \
        (SMOKE_STREAM_LENGTH if args.smoke else BURST_STREAM_LENGTH)
    placements = placement_report(count=count, seed=args.seed)
    bursts = burst_report(count=burst_count, seed=args.seed)
    print(render(placements, bursts, count, burst_count, args.seed))
    if args.json:
        document = json_report(placements, bursts, count, burst_count,
                               args.seed)
        Path(args.json).write_text(document, encoding="utf-8")
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
