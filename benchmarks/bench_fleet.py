"""Fleet evaluation: cross-device placement on homogeneous and
heterogeneous fleets.

Beyond the paper (which arbitrates a single accelerator), this bench
scales the open-system methodology to a *fleet*: Poisson request streams
are placed across devices by each placement policy, every device runs its
own §3 allocator, and fleet-wide STP/ANTT/unfairness/queueing delay are
reported alongside the per-device split.

Expected shape of the results:

* on a **homogeneous** fleet, round-robin is near-optimal (it is exactly
  load balancing), so least-loaded only ties it;
* on a **heterogeneous** fleet (fast + derated slow device), round-robin
  sends half the stream to the slow device regardless of backlog — its
  queue grows and fleet ANTT suffers — while least-loaded placement
  routes by estimated completion and wins on ANTT (the acceptance
  criterion of this subsystem);
* affinity placement trades a little balance for locality: migrations are
  rare and bounded by the penalty.
"""

import pytest

from repro.accelos.placement import (AffinityPlacement, LeastLoadedPlacement,
                                     RoundRobinPlacement)
from repro.cl import derated_device, nvidia_k20m
from repro.harness import (FleetOpenSystemExperiment, format_table,
                           fleet_arrival_rate_for_load)
from repro.sim import DeviceFleet
from repro.workloads import poisson_arrivals

STREAM_LENGTH = 32
SEED = 2016
LOAD = 1.0
TENANTS = 6
SCHEME = "accelos"

FLEETS = {
    "homogeneous 2x K20m": lambda: DeviceFleet([
        ("k20m-0", nvidia_k20m()),
        ("k20m-1", nvidia_k20m()),
    ]),
    "heterogeneous fast+slow": lambda: DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated",
                                clock_scale=0.4, cu_scale=0.5)),
    ]),
}

POLICIES = (RoundRobinPlacement, LeastLoadedPlacement, AffinityPlacement)


def stream(fleet):
    rate = fleet_arrival_rate_for_load(LOAD, fleet)
    return poisson_arrivals(rate, STREAM_LENGTH, seed=SEED, tenants=TENANTS)


@pytest.mark.parametrize("fleet_name", list(FLEETS))
def test_fleet_placement_sweep(benchmark, emit, fleet_name):
    fleet = FLEETS[fleet_name]()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = stream(fleet)

    results = experiment.run_policies(arrivals, SCHEME,
                                      [policy() for policy in POLICIES])
    rows = []
    for name, result in results.items():
        share = " ".join("{}={:.0%}".format(device_id, fraction)
                         for device_id, fraction
                         in result.device_share.items())
        rows.append([name, result.overall.unfairness, result.overall.stp,
                     result.overall.antt,
                     result.overall.mean_queueing_delay * 1e3,
                     result.migrations, share])
    emit(format_table(
        ["placement", "unfairness", "STP", "ANTT", "queue delay (ms)",
         "migrations", "device share"],
        rows,
        title="Fleet placement sweep — {} ({} {} requests, load {}, seed {})"
        .format(fleet_name, STREAM_LENGTH, SCHEME, LOAD, SEED)))

    benchmark(experiment.run, arrivals, SCHEME, LeastLoadedPlacement())

    least_loaded = results["least-loaded"]
    round_robin = results["round-robin"]
    if "heterogeneous" in fleet_name:
        # the acceptance criterion: load-aware placement beats blind
        # round-robin on ANTT when devices differ in speed
        assert least_loaded.overall.antt < round_robin.overall.antt
    else:
        # on identical devices round-robin IS load balancing: least-loaded
        # must stay in the same ballpark, not unlock anything
        assert least_loaded.overall.antt \
            < round_robin.overall.antt * 1.25

    # conservation: every request served exactly once, on some device
    for result in results.values():
        assert len(result.overall.records) == STREAM_LENGTH
        assert sum(len(r.records) for r in result.per_device.values()) \
            == STREAM_LENGTH

    # determinism: the whole campaign is a pure function of the seed
    again = experiment.run(stream(fleet), SCHEME, LeastLoadedPlacement())
    assert again.overall.antt == least_loaded.overall.antt
    assert [r.finish for r in again.overall.records] \
        == [r.finish for r in least_loaded.overall.records]


def test_fleet_schemes_ranked(emit):
    """accelOS keeps its single-device ranking when scaled to a fleet."""
    fleet = FLEETS["heterogeneous fast+slow"]()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = stream(fleet)
    results = experiment.run_all(arrivals, LeastLoadedPlacement())
    rows = [[scheme, r.overall.unfairness, r.overall.stp, r.overall.antt,
             r.overall.mean_queueing_delay * 1e3]
            for scheme, r in results.items()]
    emit(format_table(
        ["scheme", "unfairness", "STP", "ANTT", "queue delay (ms)"],
        rows,
        title="Fleet schemes — heterogeneous fast+slow, least-loaded "
              "placement"))
    assert results["accelos"].overall.unfairness \
        < results["baseline"].overall.unfairness
    assert results["accelos"].overall.antt < results["ek"].overall.antt
