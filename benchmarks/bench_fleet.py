"""Fleet evaluation: cross-device placement on homogeneous and
heterogeneous fleets.

Beyond the paper (which arbitrates a single accelerator), this bench
scales the open-system methodology to a *fleet*: a multi-tenant request
stream is placed across devices by each registered placement policy,
every device runs its own §3 allocator, and fleet-wide
STP/ANTT/unfairness/queueing delay are reported alongside the per-device
split.  The whole campaign is one declarative
:class:`repro.api.ExperimentSpec` per fleet — topology (derated
heterogeneity included) and placement grid are data, not wiring.

Expected shape of the results:

* on a **homogeneous** fleet, round-robin is near-optimal (it is exactly
  load balancing), so least-loaded only ties it;
* on a **heterogeneous** fleet (fast + derated slow device), round-robin
  sends half the stream to the slow device regardless of backlog — its
  queue grows and fleet ANTT suffers — while least-loaded placement
  routes by estimated completion and wins on ANTT (the acceptance
  criterion of this subsystem);
* affinity placement trades a little balance for locality: migrations are
  rare and bounded by the penalty.
"""

import pytest

from repro.api import (ExperimentSpec, build_device, build_stream,
                       placement_from_name, placement_names, run)
from repro.harness import FleetOpenSystemExperiment, format_table
from repro.sim import DeviceFleet

STREAM_LENGTH = 32
SEED = 2016
LOAD = 1.0
SCHEME = "accelos"
SCENARIO = "multi-tenant"

FLEETS = {
    "homogeneous 2x K20m": (
        {"id": "k20m-0", "base": "nvidia-k20m"},
        {"id": "k20m-1", "base": "nvidia-k20m"},
    ),
    "heterogeneous fast+slow": (
        {"id": "fast", "base": "nvidia-k20m"},
        {"id": "slow", "base": "nvidia-k20m",
         "clock_scale": 0.4, "cu_scale": 0.5},
    ),
}


def spec_for(fleet_name, schemes=(SCHEME,), placements=None,
             scenario_name=SCENARIO):
    return ExperimentSpec(
        scenario=scenario_name,
        schemes=schemes,
        loads=(LOAD,),
        seeds=(SEED,),
        count=STREAM_LENGTH,
        devices=FLEETS[fleet_name],
        placements=placements if placements is not None
        else placement_names(),
        metrics=("unfairness", "stp", "antt", "mean_queueing_delay"),
    )


@pytest.mark.parametrize("fleet_name", list(FLEETS))
def test_fleet_placement_sweep(benchmark, emit, fleet_name):
    results = run(spec_for(fleet_name))

    rows = []
    for placement in placement_names():
        result = results.get(placement=placement)
        share = " ".join("{}={:.0%}".format(device_id, fraction)
                         for device_id, fraction
                         in result.device_share.items())
        rows.append([placement, result.overall.unfairness,
                     result.overall.stp, result.overall.antt,
                     result.overall.mean_queueing_delay * 1e3,
                     result.migrations, share])
    emit(format_table(
        ["placement", "unfairness", "STP", "ANTT", "queue delay (ms)",
         "migrations", "device share"],
        rows,
        title="Fleet placement sweep — {} ({} {} requests, load {}, seed {})"
        .format(fleet_name, STREAM_LENGTH, SCHEME, LOAD, SEED)))

    # the timed probe keeps the pre-port target exactly: one scheme under
    # one placement over a pre-built fleet and stream — spec plumbing
    # (validation, device build, calibration, stream generation) stays
    # outside the measured region.  build_stream is the driver's own
    # stream derivation, so the probe simulates the same workload as the
    # asserted results above.
    spec = spec_for(fleet_name)
    fleet = DeviceFleet([(entry.id, build_device(entry))
                         for entry in spec.devices])
    stream = build_stream(spec, LOAD, SEED, 0, fleet=fleet)
    benchmark(FleetOpenSystemExperiment(fleet).run, stream, SCHEME,
              placement_from_name("least-loaded"))

    least_loaded = results.get(placement="least-loaded")
    round_robin = results.get(placement="round-robin")
    if "heterogeneous" in fleet_name:
        # the acceptance criterion: load-aware placement beats blind
        # round-robin on ANTT when devices differ in speed
        assert least_loaded.overall.antt < round_robin.overall.antt
    else:
        # on identical devices round-robin IS load balancing: least-loaded
        # must stay in the same ballpark, not unlock anything
        assert least_loaded.overall.antt \
            < round_robin.overall.antt * 1.25

    # conservation: every request served exactly once, on some device
    for _, result in results:
        assert len(result.overall.records) == STREAM_LENGTH
        assert sum(len(r.records) for r in result.per_device.values()) \
            == STREAM_LENGTH

    # determinism: the whole campaign is a pure function of the spec
    again = run(spec_for(fleet_name, placements=("least-loaded",)))
    assert again.antt(placement="least-loaded") == least_loaded.overall.antt
    assert [r.finish for r in again.records(placement="least-loaded")] \
        == [r.finish for r in least_loaded.overall.records]


def test_fleet_schemes_ranked(emit):
    """accelOS keeps its single-device ranking when scaled to a fleet.

    Steady traffic: the ranking claim mirrors the single-device bench.
    """
    results = run(spec_for("heterogeneous fast+slow",
                           schemes=("baseline", "ek", "accelos"),
                           placements=("least-loaded",),
                           scenario_name="steady"))
    rows = [[scheme, results.unfairness(scheme=scheme),
             results.stp(scheme=scheme), results.antt(scheme=scheme),
             results.metric("mean_queueing_delay", scheme=scheme) * 1e3]
            for scheme in ("baseline", "ek", "accelos")]
    emit(format_table(
        ["scheme", "unfairness", "STP", "ANTT", "queue delay (ms)"],
        rows,
        title="Fleet schemes — heterogeneous fast+slow, least-loaded "
              "placement"))
    assert results.unfairness(scheme="accelos") \
        < results.unfairness(scheme="baseline")
    assert results.antt(scheme="accelos") < results.antt(scheme="ek")


def test_fleet_schemes_ranked_under_bursty_multi_tenant(emit):
    """The rankings that survive realistic traffic, pinned by CI.

    Under bursty multi-tenant surges on a fast+slow fleet, accelOS still
    wins on ANTT and tail slowdown against both baselines — but its
    *unfairness* edge over the standard stack does NOT survive (the
    fleet-wide slowdown spread is dominated by which device a burst
    lands on, not by per-device sharing; see ROADMAP open items).  This
    test asserts the former so a regression is visible, and documents
    the latter instead of pretending it holds.
    """
    results = run(spec_for("heterogeneous fast+slow",
                           schemes=("baseline", "ek", "accelos"),
                           placements=("least-loaded",)))
    rows = [[scheme, results.unfairness(scheme=scheme),
             results.antt(scheme=scheme),
             results.p99_slowdown(scheme=scheme)]
            for scheme in ("baseline", "ek", "accelos")]
    emit(format_table(
        ["scheme", "unfairness", "ANTT", "p99 slowdown"],
        rows,
        title="Fleet schemes — heterogeneous, bursty multi-tenant "
              "traffic"))
    assert results.antt(scheme="accelos") < results.antt(scheme="baseline")
    assert results.antt(scheme="accelos") < results.antt(scheme="ek")
    assert results.p99_slowdown(scheme="accelos") \
        < results.p99_slowdown(scheme="baseline")
