"""Million-request streaming evaluation: lazy arrivals, sketch metrics,
bounded memory.

The paper evaluates schedulers over streams small enough to hold every
request record in memory.  This bench pins the PR 7 scaling plane: a
**10^6-request** bursty multi-tenant stream is placed across a
heterogeneous fleet through the closed loop, with arrivals generated
lazily (``TrafficScenario.iter_arrivals``) and metrics accumulated by
online sketches (:mod:`repro.metrics.sketches`) — no request list is
ever materialised, so peak memory is a function of the *in-flight*
population, not of stream length.

Two claims are pinned:

* **bounded memory** — tracemalloc peak during the streaming run stays
  under a fixed budget that does not grow with the request count (the
  smoke run measures a 10x smaller stream alongside and asserts the
  peak does not scale with it);
* **sketch fidelity** — a spec-driven ``metrics_mode="streaming"`` run
  reproduces the exact-mode ANTT/STP/unfairness bit-for-bit up to
  summation order (these are plain accumulators), with percentiles
  within the documented P^2 tolerance.

The workload is the §8.5 small-kernel regime (requests small enough
that hundreds stack on one device — the population that makes 10^6
requests tractable and the in-flight set interesting), shaped by the
bursty multi-tenant scenario pushed past fleet saturation.

Doubles as the CI scale probe:

    python benchmarks/bench_scale.py --smoke --json BENCH_scale.json

emits a deterministic JSON report (same seed => bit-identical file).
Raw tracemalloc peaks are deliberately *excluded* from the JSON — they
vary with allocator details across interpreter builds — the report
carries the budget and a pass/fail boolean instead.
"""

import argparse
import json
import sys
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # CLI invocation: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest

from repro.api import ExperimentSpec, run
from repro.cl import derated_device, nvidia_k20m
from repro.harness import FleetOpenSystemExperiment, format_table
from repro.metrics import P2_RANK_TOLERANCE, P2_RELATIVE_SLACK
from repro.sim import DeviceFleet
from repro.workloads import calibrated_model

SCALE_COUNT = 1_000_000
SMOKE_COUNT = 100_000
SMOKE_BASELINE_COUNT = 10_000
SEED = 2016
LOAD = 0.8
BURST_FACTOR = 1.4  # push the calibrated rate past fleet saturation
SCENARIO = "multi-tenant"
SCHEME = "accelos"
PLACEMENT = "least-loaded"

# the §8.5 small-kernel regime: requests small enough that the fleet
# keeps a deep concurrent population (and 10^6 of them stay tractable)
SMALL_KERNELS = (
    "mri-gridding_scan_inter1", "mri-q_ComputePhiMag",
    "sad_larger_calc_16", "histo_final", "mri-gridding_scan_L1",
    "sad_larger_calc_8", "mri-gridding_uniformAdd", "histo_prescan",
)

# peak tracemalloc budget for the streaming run: generous headroom over
# the observed in-flight working set (single-digit MB at any n), tight
# enough that materialising a 10^5-request record list blows it
MEMORY_BUDGET_BYTES = 32 * 1024 * 1024
# smoke sublinearity gate: 10x the requests must not cost anywhere near
# 10x the peak (the in-flight population, not n, sets the working set)
MEMORY_SCALE_FACTOR = 3.0

# the spec-driven fidelity leg: small on purpose (it runs the exact
# path too, which materialises records)
FIDELITY_COUNT = 256

FIDELITY_SPEC = dict(
    scenario=SCENARIO,
    schemes=(SCHEME,),
    loads=(LOAD,),
    seeds=(SEED,),
    count=FIDELITY_COUNT,
    devices=(
        {"id": "fast", "base": "nvidia-k20m"},
        {"id": "slow", "base": "nvidia-k20m",
         "clock_scale": 0.5, "cu_scale": 1.0},
    ),
    placements=(PLACEMENT,),
    metrics=("antt", "stp", "unfairness", "p99_slowdown"),
)


def build_fleet():
    base = nvidia_k20m()
    return DeviceFleet([
        ("fast", base),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.5)),
    ])


def arrival_iter(count, seed=SEED):
    """The lazy bursty multi-tenant stream (fresh single-use iterator)."""
    model, rate = calibrated_model(SCENARIO, load=LOAD,
                                   names=list(SMALL_KERNELS))
    return model.iter_arrivals(rate * BURST_FACTOR, count, seed=seed)


WARMUP_COUNT = 2_000
_WARMED = False


def _warm_up():
    """Populate the interpreter-lifetime caches (kernel profiles,
    isolated-time memos) outside the traced region, so the measured
    peak reflects the streaming plane, not first-touch cache fills."""
    global _WARMED
    if _WARMED:
        return
    FleetOpenSystemExperiment(build_fleet()).run_stream(
        arrival_iter(WARMUP_COUNT), SCHEME, PLACEMENT)
    _WARMED = True


def streaming_run(count, seed=SEED):
    """One measured streaming fleet run: ``(result, peak_bytes)``."""
    _warm_up()
    fleet = build_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    tracemalloc.start()
    try:
        result = experiment.run_stream(arrival_iter(count, seed=seed),
                                       SCHEME, PLACEMENT)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def scale_report(count, seed=SEED, baseline_count=None):
    """The scale leg: metrics of the big streaming run + memory verdict."""
    result, peak = streaming_run(count, seed=seed)
    report = {
        "scenario": SCENARIO, "scheme": SCHEME, "placement": PLACEMENT,
        "load": LOAD, "burst_factor": BURST_FACTOR, "seed": seed,
        "count": count,
        "kernels": list(SMALL_KERNELS),
        "metrics": {
            "antt": result.antt,
            "stp": result.stp,
            "unfairness": result.unfairness,
            "mean_queueing_delay": result.mean_queueing_delay,
            "p50_slowdown": result.slowdown_tails.p50,
            "p95_slowdown": result.slowdown_tails.p95,
            "p99_slowdown": result.slowdown_tails.p99,
            "max_slowdown": result.slowdown_tails.max,
            "makespan": result.makespan,
            "migrations": result.migrations,
            "rebalances": result.rebalances,
            "device_share": dict(result.device_share),
        },
        "memory": {
            "budget_bytes": MEMORY_BUDGET_BYTES,
            "within_budget": bool(peak < MEMORY_BUDGET_BYTES),
        },
    }
    peaks = {count: peak}
    if baseline_count is not None:
        _, small_peak = streaming_run(baseline_count, seed=seed)
        peaks[baseline_count] = small_peak
        report["memory"]["baseline_count"] = baseline_count
        report["memory"]["scale_factor_budget"] = MEMORY_SCALE_FACTOR
        report["memory"]["sublinear"] = bool(
            peak < small_peak * MEMORY_SCALE_FACTOR)
    return report, peaks


def fidelity_report(seed=SEED):
    """Exact vs streaming metrics for the same spec (the fidelity leg)."""
    exact = run(ExperimentSpec(**FIDELITY_SPEC))
    streaming = run(ExperimentSpec(metrics_mode="streaming",
                                   **FIDELITY_SPEC))
    legs = {}
    for label, results in (("exact", exact), ("streaming", streaming)):
        legs[label] = {
            "antt": results.antt(),
            "stp": results.stp(),
            "unfairness": results.unfairness(),
            "p99_slowdown": results.p99_slowdown(),
        }
    return {
        "count": FIDELITY_COUNT,
        "seed": seed,
        "p2_rank_tolerance": P2_RANK_TOLERANCE,
        "p2_relative_slack": P2_RELATIVE_SLACK,
        "legs": legs,
    }


def check_memory(report, peaks):
    """The CI gate: raise if the streaming run left bounded memory."""
    memory = report["memory"]
    if not memory["within_budget"]:
        raise AssertionError(
            "streaming peak {} bytes exceeds the {}-byte budget".format(
                max(peaks.values()), memory["budget_bytes"]))
    if "sublinear" in memory and not memory["sublinear"]:
        raise AssertionError(
            "streaming peak scales with the request count: {!r}".format(
                peaks))


def check_fidelity(report):
    exact = report["legs"]["exact"]
    streaming = report["legs"]["streaming"]
    for name in ("antt", "stp", "unfairness"):
        if abs(streaming[name] - exact[name]) \
                > 1e-9 * max(1.0, abs(exact[name])):
            raise AssertionError(
                "streaming {} diverged from exact: {!r} vs {!r}".format(
                    name, streaming[name], exact[name]))
    # p99 is a P^2 estimate: same documented slack as the sketch tests
    if not (0.0 < streaming["p99_slowdown"]
            < exact["p99_slowdown"] * (1.0 + P2_RELATIVE_SLACK) * 1.5):
        raise AssertionError(
            "streaming p99 estimate implausible: {!r} vs exact "
            "{!r}".format(streaming["p99_slowdown"],
                          exact["p99_slowdown"]))


# -- pytest entry points (explicit invocation only: bench_* files are
# -- not collected by the tier-1 run) -----------------------------------------

def test_streaming_scale_smoke(emit):
    report, peaks = scale_report(20_000, baseline_count=5_000)
    check_memory(report, peaks)
    metrics = report["metrics"]
    emit(format_table(
        ["count", "ANTT", "unfairness", "p99 slowdown", "peak (MB)"],
        [[count, metrics["antt"], metrics["unfairness"],
          metrics["p99_slowdown"], peaks[count] / 1e6]
         for count in sorted(peaks)],
        title="Streaming scale smoke — {} {} requests".format(
            SCHEME, SCENARIO)))
    assert metrics["antt"] > 1.0
    assert 0 < metrics["p50_slowdown"] <= metrics["p99_slowdown"] \
        <= metrics["max_slowdown"]
    # determinism: the streaming plane is a pure function of the seed
    again, _ = streaming_run(20_000)
    assert again.antt == metrics["antt"]
    assert again.p99_slowdown == metrics["p99_slowdown"]


def test_streaming_matches_exact_through_the_spec(emit):
    report = fidelity_report()
    check_fidelity(report)
    emit(format_table(
        ["leg", "ANTT", "STP", "unfairness", "p99 slowdown"],
        [[label, m["antt"], m["stp"], m["unfairness"], m["p99_slowdown"]]
         for label, m in report["legs"].items()],
        title="Spec-driven exact vs streaming — {} requests".format(
            FIDELITY_COUNT)))


# -- CLI entry point (CI scale trajectory) ------------------------------------

def render(scale, fidelity, peaks):
    metrics = scale["metrics"]
    tables = [format_table(
        ["count", "ANTT", "STP", "unfairness", "p99 slowdown",
         "peak (MB)", "within budget"],
        [[count,
          metrics["antt"] if count == scale["count"] else "",
          metrics["stp"] if count == scale["count"] else "",
          metrics["unfairness"] if count == scale["count"] else "",
          metrics["p99_slowdown"] if count == scale["count"] else "",
          peaks[count] / 1e6,
          scale["memory"]["within_budget"] if count == scale["count"]
          else ""]
         for count in sorted(peaks)],
        title="Streaming scale — {} {} requests, {} + {}, load {}x{}"
        .format(scale["count"], SCENARIO, SCHEME, PLACEMENT, LOAD,
                BURST_FACTOR))]
    tables.append(format_table(
        ["leg", "ANTT", "STP", "unfairness", "p99 slowdown"],
        [[label, m["antt"], m["stp"], m["unfairness"], m["p99_slowdown"]]
         for label, m in fidelity["legs"].items()],
        title="Spec-driven exact vs streaming — {} requests".format(
            fidelity["count"])))
    return "\n\n".join(tables)


def json_report(scale, fidelity):
    """Deterministic JSON document (stable key order, plain floats;
    raw memory peaks excluded by design — see module docstring)."""
    return json.dumps({
        "scale": scale,
        "fidelity": fidelity,
    }, sort_keys=True, indent=2) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="million-request streaming evaluation probe")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run ({} requests + a {}-request "
                             "memory baseline)".format(
                                 SMOKE_COUNT, SMOKE_BASELINE_COUNT))
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_scale.json)")
    parser.add_argument("--count", type=int, default=None,
                        help="requests in the scale run (default {})".format(
                            SCALE_COUNT))
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    count = args.count if args.count is not None else \
        (SMOKE_COUNT if args.smoke else SCALE_COUNT)
    baseline = SMOKE_BASELINE_COUNT if args.smoke else None
    scale, peaks = scale_report(count, seed=args.seed,
                                baseline_count=baseline)
    fidelity = fidelity_report(seed=args.seed)
    print(render(scale, fidelity, peaks))
    check_memory(scale, peaks)
    check_fidelity(fidelity)
    if args.json:
        document = json_report(scale, fidelity)
        Path(args.json).write_text(document, encoding="utf-8")
        print("wrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
