"""Figure 10: fairness-improvement distributions (accelOS and EK)."""

import numpy as np
import pytest

from benchmarks.conftest import DEVICES, sweep_summary
from repro.harness import format_table, run_workload

PAPER_ACCELOS = {
    "NVIDIA K20m": {2: 6.8, 4: 10.4, 8: 12.27},
    "AMD R9 295X2": {2: 8.21, 4: 9.56, 8: 13.66},
}


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig10_fairness_improvement(benchmark, emit, device_name):
    rows = []
    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        acc = np.asarray(summary.fairness_improvements["accelos"])
        ek = np.asarray(summary.fairness_improvements["ek"])
        rows.append([
            k, float(acc.mean()), float(acc.min()), float(acc.max()),
            "{:.0f}%".format(100 * (acc < 1).mean()),
            float(ek.mean()),
            "{:.0f}%".format(100 * (ek < 1).mean()),
            PAPER_ACCELOS[device_name][k],
        ])
    emit(format_table(
        ["requests", "accelOS mean", "min", "max", "acc neg",
         "EK mean", "EK neg", "paper accelOS"],
        rows,
        title="Fig 10 ({}) — fairness improvement over standard OpenCL "
              "(paper: accelOS <2% negative, EK 44% negative)"
              .format(device_name)))

    device = DEVICES[device_name]()
    benchmark(run_workload, ("spmv", "sgemm"), "accelos", device,
              repetitions=1)

    summary = sweep_summary(device_name, 2)
    # accelOS makes fairness materially worse on only a minority of pairs
    # (the paper reports <2%; our coarse timing model leaves ~a quarter of
    # near-fair small-kernel pairs marginally negative — see docs/PAPER_MAPPING.md)
    assert summary.negative_fairness_fraction("accelos") < 0.35
    assert summary.avg_fairness_improvement("accelos") > 2.0
