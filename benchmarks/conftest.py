"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark module regenerates one table or figure from the paper's
evaluation (§8).  Sweeps are computed once per session and shared; each
benchmark also times one representative workload execution through
pytest-benchmark so `--benchmark-only` runs measure the harness itself.

Sweep sizes: all 625 pairwise workloads (as in the paper), plus random
4-/8-kernel samples sized by ``REPRO_SWEEP_SCALE`` (default 96 each; the
paper used 16384 and 32768 — set the scale accordingly on a big machine).
"""

from __future__ import annotations

import os

import pytest

from repro.cl import amd_r9_295x2, nvidia_k20m
from repro.harness import run_sweep, summarize
from repro.workloads import pairwise_workloads, random_workloads

BENCH_REPETITIONS = 2


def bench_sample_count():
    scale = max(1, int(os.environ.get("REPRO_SWEEP_SCALE", "1")))
    return 96 * scale


DEVICES = {
    "NVIDIA K20m": nvidia_k20m,
    "AMD R9 295X2": amd_r9_295x2,
}

_cache = {}


def sweep_summary(device_name, request_count):
    """Summarised sweep for one device and request size (cached)."""
    key = (device_name, request_count)
    if key not in _cache:
        device = DEVICES[device_name]()
        if request_count == 2:
            workloads = pairwise_workloads()
        else:
            workloads = random_workloads(request_count, bench_sample_count())
        results = run_sweep(workloads, device,
                            repetitions=BENCH_REPETITIONS)
        _cache[key] = summarize(results)
    return _cache[key]


@pytest.fixture(scope="session")
def devices():
    return DEVICES


@pytest.fixture
def emit(capsys):
    """Print a reproduction table straight to the terminal."""
    def _emit(text):
        with capsys.disabled():
            print("\n" + text)
    return _emit
