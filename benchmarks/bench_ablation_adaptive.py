"""Ablation (§6.4): chunk-size policy — naive vs adaptive vs fixed sizes.

Not a paper figure per se; quantifies the design choice §6.4 motivates:
dequeue overhead must be amortised for short kernels, while over-chunking
erodes dynamic load balancing for imbalanced ones.
"""

import pytest

from benchmarks.conftest import DEVICES
from repro.harness import format_table
from repro.sim import ExecutionMode, GPUSimulator
from repro.sim.resources import max_resident_groups
from repro.workloads import profile_by_name

KERNELS = ("mri-gridding_reorder", "sad_calc_8", "mri-gridding_splitSort",
           "tpacf")


@pytest.mark.parametrize("device_name", ["NVIDIA K20m"])
def test_ablation_chunk_size(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    rows = []
    for name in KERNELS:
        profile = profile_by_name(name)
        spec = profile.exec_spec()
        slots = min(max_resident_groups(spec, device) // 2,
                    spec.total_groups)
        row = [name]
        times = {}
        for chunk in (1, 2, 4, 8):
            accel = spec.with_mode(ExecutionMode.ACCELOS,
                                   physical_groups=slots, chunk=chunk)
            times[chunk] = GPUSimulator(device).run([accel]).makespan
            row.append(times[chunk] * 1e3)
        rows.append(row)
    emit(format_table(
        ["kernel", "chunk 1 (ms)", "chunk 2", "chunk 4", "chunk 8"],
        rows, title="Ablation §6.4 ({}) — dequeue chunk size vs single-"
                    "kernel makespan at half occupancy".format(device_name)))

    profile = profile_by_name("tpacf")
    spec = profile.exec_spec().with_mode(ExecutionMode.ACCELOS,
                                         physical_groups=32, chunk=1)
    benchmark(GPUSimulator(device).run, [spec])

    # for a long imbalanced kernel, chunk 1 must not be catastrophic
    # (overhead is small relative to work) — the table shows the tradeoff
    assert rows[-1][1] < rows[-1][4] * 1.2
