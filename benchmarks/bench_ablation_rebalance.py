"""Ablation (paper §2.5 / §10 future work): rebalancing freed allocations.

The paper admits that an accelOS kernel "cannot leverage additional
resources that may be released if other kernel executions terminate first"
and leaves better software scheduling as future work.  This bench quantifies
the cost of that limitation by comparing bound allocations against the
simulator's slot-rebalancing extension on the standard random workloads.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEVICES
from repro.harness import format_table
from repro.harness.experiment import _accelos_specs, isolated_time
from repro.accelos.adaptive import SchedulingPolicy
from repro.sim import GPUSimulator
from repro.workloads import random_workloads


def run_batch(names, device, rebalance):
    specs = _accelos_specs(list(names), device, SchedulingPolicy.ADAPTIVE)
    sim = GPUSimulator(device, rebalance=rebalance)
    return sim.run(specs)


@pytest.mark.parametrize("device_name", ["NVIDIA K20m"])
def test_ablation_rebalancing(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    rows = []
    gains = []
    for k in (2, 4, 8):
        workloads = random_workloads(k, 24, seed=7)
        bound_makespans = []
        rebal_makespans = []
        rebal_unfairness = []
        bound_unfairness = []
        for workload in workloads:
            iso = [isolated_time(n, device) for n in workload]
            bound = run_batch(workload, device, rebalance=False)
            rebal = run_batch(workload, device, rebalance=True)
            bound_makespans.append(bound.makespan)
            rebal_makespans.append(rebal.makespan)
            bound_is = [t / i for t, i in zip(bound.turnarounds, iso)]
            rebal_is = [t / i for t, i in zip(rebal.turnarounds, iso)]
            bound_unfairness.append(max(bound_is) / min(bound_is))
            rebal_unfairness.append(max(rebal_is) / min(rebal_is))
        gain = float(np.mean(np.array(bound_makespans)
                             / np.array(rebal_makespans)))
        gains.append(gain)
        rows.append([k, gain,
                     float(np.mean(bound_unfairness)),
                     float(np.mean(rebal_unfairness))])
    emit(format_table(
        ["requests", "throughput gain from rebalancing",
         "U bound (paper design)", "U rebalanced"],
        rows,
        title="Ablation §2.5 ({}) — re-granting freed slots (the paper's "
              "future work) vs lifetime-bound allocations".format(
                  device_name)))

    benchmark(run_batch, random_workloads(4, 1, seed=7)[0], device, True)

    # rebalancing can only help throughput (work conservation)
    assert all(g >= 0.99 for g in gains)
    # and the paper's limitation is real: there is something to gain
    assert max(gains) > 1.02
