"""Figure 12: average kernel execution overlap.

Measurement-protocol note (docs/PAPER_MAPPING.md, deviation 1): the paper measures
overlap in a steady multi-tenant state where applications re-issue their
requests, so similar shares imply near-total co-execution; our harness
measures a single launch per request, which bounds the all-kernels
co-execution window by the *shortest* kernel.  Ordering and trends
(std ~= 0, EK in between and collapsing at 8, accelOS highest) reproduce;
absolute accelOS values are lower than the paper's 82-94%.
"""

import pytest

from benchmarks.conftest import DEVICES, sweep_summary
from repro.harness import format_table, run_workload

PAPER = {
    "NVIDIA K20m": {2: (21, 71, 94), 4: (3, 43, 87), 8: (0, 7, 82)},
    "AMD R9 295X2": {2: (4, 53, 83), 4: (0, 17, 75), 8: (0, 0, 69)},
}


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig12_execution_overlap(benchmark, emit, device_name):
    rows = []
    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        paper = PAPER[device_name][k]
        rows.append([
            k,
            "{:.0f}%".format(100 * summary.avg_overlap["baseline"]),
            "{:.0f}%".format(100 * summary.avg_overlap["ek"]),
            "{:.0f}%".format(100 * summary.avg_overlap["accelos"]),
            "{}% / {}% / {}%".format(*paper),
        ])
    emit(format_table(
        ["requests", "std OpenCL", "EK", "accelOS", "paper std/EK/accelOS"],
        rows, title="Fig 12 ({}) — average kernel execution overlap, higher "
                    "is better".format(device_name)))

    device = DEVICES[device_name]()
    benchmark(run_workload, ("histo_main", "spmv"), "accelos", device,
              repetitions=1)

    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        assert summary.avg_overlap["accelos"] >= \
            summary.avg_overlap["baseline"]
    # standard OpenCL overlap collapses beyond 2 requests
    assert sweep_summary(device_name, 8).avg_overlap["baseline"] < 0.02
