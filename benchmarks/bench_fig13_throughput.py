"""Figure 13: average system throughput speedups over standard OpenCL."""

import pytest

from benchmarks.conftest import DEVICES, sweep_summary
from repro.harness import format_table, run_workload

PAPER = {
    "NVIDIA K20m": {2: (1.13, 1.08), 4: (1.19, 1.02), 8: (1.23, 0.91)},
    "AMD R9 295X2": {2: (1.17, 1.07), 4: (1.19, 0.95), 8: (1.31, 0.90)},
}


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig13_throughput_speedup(benchmark, emit, device_name):
    rows = []
    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        paper_acc, paper_ek = PAPER[device_name][k]
        rows.append([
            k,
            summary.avg_throughput_speedup("accelos"),
            summary.avg_throughput_speedup("ek"),
            "{} / {}".format(paper_acc, paper_ek),
        ])
    emit(format_table(
        ["requests", "accelOS", "EK", "paper accelOS/EK"],
        rows, title="Fig 13 ({}) — average system throughput speedup over "
                    "standard OpenCL".format(device_name)))

    device = DEVICES[device_name]()
    benchmark(run_workload, ("lbm", "sgemm"), "accelos", device,
              repetitions=1)

    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        # accelOS always beats EK on throughput, as in the paper
        assert summary.avg_throughput_speedup("accelos") > \
            summary.avg_throughput_speedup("ek")
