"""Event-engine fast-path regression bench: speedup with zero drift.

PR 10 rebuilt the open-system event loop around incremental admission
accounting, an allocation memo over the active requirement multiset,
and indexed pending-slot bookkeeping (see ``docs/PERFORMANCE.md``).
Every optimisation is switchable: ``repro.sim.reference_path()`` runs
the original reference scans.  This bench pins two claims about that
fast path on a **10^5-request** bursty multi-tenant stream:

* **zero behavioural drift** — the fast and reference paths produce
  *byte-identical* results (``repr(vars(result))`` equality, covering
  every metric, tail, and per-device share), asserted in-bench for a
  single-device leg and a heterogeneous-fleet leg;
* **a speedup floor** — the fast path must process the stream at a
  minimum multiple of the reference path's events/sec (3x on the full
  10^5-request run, a conservative 1.8x on the CI smoke).  The floor
  is only *enforced* when ``os.cpu_count()`` meets a minimum — shared
  single-core CI runners time too noisily to gate a merge on — but the
  measured verdict is always recorded.

Doubles as the CI engine probe:

    python benchmarks/bench_engine.py --smoke --json BENCH_engine.json

emits a deterministic JSON report (same seed => bit-identical file).
Wall-clock seconds and the raw speedup ratio are deliberately
*excluded* from the JSON — they vary run to run — the report carries
the event counts, the metric values, the identity verdicts, and the
floor pass/fail booleans instead.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # CLI invocation: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cl import derated_device, nvidia_k20m
from repro.harness import (FleetOpenSystemExperiment, OpenSystemExperiment,
                           format_table)
from repro.sim import DeviceFleet, reference_path
from repro.workloads import calibrated_model

FULL_COUNT = 100_000
SMOKE_COUNT = 20_000
FULL_FLEET_COUNT = 100_000
SMOKE_FLEET_COUNT = 10_000
SEED = 2016
LOAD = 0.8
BURST_FACTOR = 1.4  # push the calibrated rate past saturation
SCENARIO = "multi-tenant"
SCHEME = "accelos"
PLACEMENT = "least-loaded"

# the §8.5 small-kernel regime: requests small enough that the device
# keeps a deep concurrent population — the regime where per-event
# engine cost dominates and the reference scans degrade
SMALL_KERNELS = (
    "mri-gridding_scan_inter1", "mri-q_ComputePhiMag",
    "sad_larger_calc_16", "histo_final", "mri-gridding_scan_L1",
    "sad_larger_calc_8", "mri-gridding_uniformAdd", "histo_prescan",
)

# speedup floors (events/sec fast over events/sec reference).  The
# full-scale floor is the PR's acceptance bar; the smoke floor is
# deliberately looser — memo hit rates rise with stream length, so the
# short CI stream underestimates the full-scale ratio.
FULL_SPEEDUP_FLOOR = 3.0
SMOKE_SPEEDUP_FLOOR = 1.8
# fewer cores than this and the floor is recorded but not enforced
# (timing on shared single-core runners is too noisy to gate on)
MIN_CPUS_TO_ENFORCE = 2


def build_fleet():
    return DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.5)),
    ])


def arrival_iter(count, seed=SEED):
    """The lazy bursty multi-tenant stream (fresh single-use iterator)."""
    model, rate = calibrated_model(SCENARIO, load=LOAD,
                                   names=list(SMALL_KERNELS))
    return model.iter_arrivals(rate * BURST_FACTOR, count, seed=seed)


WARMUP_COUNT = 2_000
_WARMED = False


def _warm_up():
    """Populate the interpreter-lifetime caches (kernel profiles,
    isolated-time memos) before any timed leg, so both the fast and the
    reference measurements pay identical first-touch costs (none)."""
    global _WARMED
    if _WARMED:
        return
    OpenSystemExperiment(nvidia_k20m()).run_stream(
        arrival_iter(WARMUP_COUNT), SCHEME)
    FleetOpenSystemExperiment(build_fleet()).run_stream(
        arrival_iter(WARMUP_COUNT), SCHEME, PLACEMENT)
    _WARMED = True


def _timed_device_run(count, seed):
    experiment = OpenSystemExperiment(nvidia_k20m())
    start = time.perf_counter()
    result = experiment.run_stream(arrival_iter(count, seed=seed), SCHEME)
    wall = time.perf_counter() - start
    return result, experiment.events_processed, wall


def _timed_fleet_run(count, seed):
    experiment = FleetOpenSystemExperiment(build_fleet())
    start = time.perf_counter()
    result = experiment.run_stream(arrival_iter(count, seed=seed),
                                   SCHEME, PLACEMENT)
    wall = time.perf_counter() - start
    return result, experiment.events_processed, wall


def ab_leg(label, runner, count, seed=SEED):
    """One A/B leg: fast run, reference run, identity + timing.

    Returns ``(report, timing)`` — the deterministic part and the
    wall-clock part, kept separate so the JSON stays byte-stable.
    """
    _warm_up()
    fast_result, fast_events, fast_wall = runner(count, seed)
    with reference_path():
        ref_result, ref_events, ref_wall = runner(count, seed)
    identical = repr(vars(fast_result)) == repr(vars(ref_result))
    if fast_events != ref_events:
        # both paths pop the same event sequence; a count drift means
        # the fast path changed *what* the engine does, not just how
        identical = False
    speedup = ((fast_events / fast_wall) / (ref_events / ref_wall)
               if fast_wall > 0 and ref_wall > 0 else float("inf"))
    report = {
        "leg": label,
        "count": count,
        "seed": seed,
        "events_processed": fast_events,
        "identical": bool(identical),
        "metrics": {
            "antt": fast_result.antt,
            "stp": fast_result.stp,
            "unfairness": fast_result.unfairness,
            "p99_slowdown": fast_result.slowdown_tails.p99,
            "makespan": fast_result.makespan,
        },
    }
    timing = {
        "leg": label,
        "fast_wall": fast_wall,
        "ref_wall": ref_wall,
        "fast_events_per_sec": fast_events / fast_wall,
        "ref_events_per_sec": ref_events / ref_wall,
        "speedup": speedup,
    }
    return report, timing


def engine_report(device_count, fleet_count, floor, seed=SEED):
    """Both legs + the floor verdict: ``(report, timings)``."""
    device_report, device_timing = ab_leg(
        "single-device", _timed_device_run, device_count, seed=seed)
    fleet_report, fleet_timing = ab_leg(
        "fleet", _timed_fleet_run, fleet_count, seed=seed)
    report = {
        "scenario": SCENARIO, "scheme": SCHEME, "placement": PLACEMENT,
        "load": LOAD, "burst_factor": BURST_FACTOR,
        "kernels": list(SMALL_KERNELS),
        "legs": [device_report, fleet_report],
        "floor": {
            "speedup_floor": floor,
            "min_cpus_to_enforce": MIN_CPUS_TO_ENFORCE,
            # the floor is judged on the single-device leg: the fleet
            # leg interleaves placement-policy cost that the engine
            # fast path does not claim to speed up
            "floor_met": bool(device_timing["speedup"] >= floor),
        },
    }
    return report, [device_timing, fleet_timing]


def check_engine(report, timings):
    """The CI gate: identity always, the speedup floor when enforced."""
    for leg in report["legs"]:
        if not leg["identical"]:
            raise AssertionError(
                "fast path diverged from the reference path on the "
                "{} leg — behavioural drift".format(leg["leg"]))
    floor = report["floor"]
    enforced = (os.cpu_count() or 1) >= floor["min_cpus_to_enforce"]
    if enforced and not floor["floor_met"]:
        raise AssertionError(
            "fast path below the {}x events/sec floor: {!r}".format(
                floor["speedup_floor"],
                [(t["leg"], t["speedup"]) for t in timings]))


# -- pytest entry points (explicit invocation only: bench_* files are
# -- not collected by the tier-1 run) -----------------------------------------

def test_engine_fast_path_smoke(emit):
    report, timings = engine_report(SMOKE_COUNT, SMOKE_FLEET_COUNT,
                                    SMOKE_SPEEDUP_FLOOR)
    check_engine(report, timings)
    emit(render(report, timings))
    assert all(leg["identical"] for leg in report["legs"])


# -- CLI entry point (CI engine probe) ----------------------------------------

def render(report, timings):
    rows = []
    timing_of = {t["leg"]: t for t in timings}
    for leg in report["legs"]:
        timing = timing_of[leg["leg"]]
        rows.append([
            leg["leg"], leg["count"], leg["events_processed"],
            "%.1f" % timing["fast_wall"], "%.1f" % timing["ref_wall"],
            "%.0f" % timing["fast_events_per_sec"],
            "%.0f" % timing["ref_events_per_sec"],
            "%.2f" % timing["speedup"], leg["identical"],
        ])
    floor = report["floor"]
    return format_table(
        ["leg", "requests", "events", "fast (s)", "ref (s)",
         "fast ev/s", "ref ev/s", "speedup", "identical"],
        rows,
        title="Engine fast path A/B — {} {}, load {}x{} (floor {}x, "
              "met: {})".format(SCHEME, SCENARIO, LOAD, BURST_FACTOR,
                                floor["speedup_floor"],
                                floor["floor_met"]))


def json_report(report):
    """Deterministic JSON document (stable key order, plain floats;
    wall-clock and raw speedup excluded by design — see module
    docstring)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="event-engine fast-path regression probe")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run ({} device + {} fleet requests, "
                             "{}x floor)".format(SMOKE_COUNT,
                                                 SMOKE_FLEET_COUNT,
                                                 SMOKE_SPEEDUP_FLOOR))
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_engine.json)")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    if args.smoke:
        counts = (SMOKE_COUNT, SMOKE_FLEET_COUNT)
        floor = SMOKE_SPEEDUP_FLOOR
    else:
        counts = (FULL_COUNT, FULL_FLEET_COUNT)
        floor = FULL_SPEEDUP_FLOOR
    report, timings = engine_report(counts[0], counts[1], floor,
                                    seed=args.seed)
    print(render(report, timings))
    if args.json:
        Path(args.json).write_text(json_report(report))
        print("\nwrote {}".format(args.json))
    check_engine(report, timings)
    return 0


if __name__ == "__main__":
    sys.exit(main())
