"""Tables 1 and 2: STP, ANTT and worst-case ANTT on both platforms."""

import pytest

from benchmarks.conftest import DEVICES, sweep_summary
from repro.harness import format_table, run_workload

PAPER = {
    "NVIDIA K20m": {
        # rqsts -> (EK STP, EK ANTT, EK W.ANTT, acc STP, acc ANTT, acc W.ANTT)
        2: (1.13, 3.57, 56.7, 1.15, 1.12, 8.2),
        4: (0.99, 4.33, 72.2, 1.18, 1.32, 14.2),
        8: (0.93, 7.57, 87.59, 1.25, 1.78, 23.1),
    },
    "AMD R9 295X2": {
        2: (1.04, 4.2, 64.6, 1.18, 1.35, 13.4),
        4: (0.97, 6.83, 84.6, 1.18, 2.12, 19.5),
        8: (0.92, 7.98, 98.54, 1.28, 3.26, 31.34),
    },
}


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_tables_1_2_stp_antt(benchmark, emit, device_name):
    rows = []
    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        paper = PAPER[device_name][k]
        rows.append([
            k,
            summary.avg_stp["ek"], summary.avg_antt["ek"],
            summary.worst_antt["ek"],
            summary.avg_stp["accelos"], summary.avg_antt["accelos"],
            summary.worst_antt["accelos"],
            "{}/{}/{} vs {}/{}/{}".format(*paper),
        ])
    emit(format_table(
        ["rqsts", "EK STP", "EK ANTT", "EK W.ANTT",
         "acc STP", "acc ANTT", "acc W.ANTT", "paper EK vs acc"],
        rows,
        title="Tables 1/2 ({}) — STP higher is better, ANTT lower is better"
        .format(device_name)))

    device = DEVICES[device_name]()
    benchmark(run_workload, ("bfs", "histo_main"), "ek", device,
              repetitions=1)

    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        assert summary.avg_antt["accelos"] < summary.avg_antt["ek"]
        assert summary.worst_antt["accelos"] < summary.worst_antt["ek"]
        assert summary.avg_stp["accelos"] > summary.avg_stp["ek"] * 0.95
