"""Figure 11: unfairness for the 13 alphabetic 2-kernel pairs."""

import pytest

from benchmarks.conftest import DEVICES
from repro.harness import format_table, run_workload
from repro.workloads import alphabetic_pairs


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig11_alphabetic_pairs(benchmark, emit, device_name):
    device = DEVICES[device_name]()
    rows = []
    accel_wins = 0
    for pair in alphabetic_pairs():
        per_scheme = {
            scheme: run_workload(pair, scheme, device, repetitions=2)
            for scheme in ("baseline", "ek", "accelos")}
        rows.append([
            " + ".join(pair),
            per_scheme["baseline"].unfairness,
            per_scheme["ek"].unfairness,
            per_scheme["accelos"].unfairness,
        ])
        if per_scheme["accelos"].unfairness <= \
                min(per_scheme["baseline"].unfairness,
                    per_scheme["ek"].unfairness) + 0.5:
            accel_wins += 1
    emit(format_table(
        ["pair", "std", "EK", "accelOS"], rows,
        title="Fig 11 ({}) — unfairness per alphabetic pair, lower is "
              "better (paper: accelOS steadily best)".format(device_name)))

    benchmark(run_workload, alphabetic_pairs()[0], "accelos", device,
              repetitions=1)
    # accelOS delivers the best (or tied) result for most pairs
    assert accel_wins >= 9
