"""Figure 9: average system unfairness, 2/4/8 requests, both platforms."""

import pytest

from benchmarks.conftest import DEVICES, sweep_summary
from repro.harness import format_table, run_workload

PAPER = {
    # device -> request count -> (std, accelOS)
    "NVIDIA K20m": {2: (8.43, 1.24), 4: (19.65, 1.89), 8: (43.42, 3.54)},
    "AMD R9 295X2": {2: (12.97, 1.58), 4: (31.25, 3.27), 8: (28.57, 2.79)},
}


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_fig09_average_unfairness(benchmark, emit, device_name):
    rows = []
    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        paper_std, paper_acc = PAPER[device_name][k]
        rows.append([
            k,
            summary.avg_unfairness["baseline"],
            summary.avg_unfairness["ek"],
            summary.avg_unfairness["accelos"],
            "{} / {}".format(paper_std, paper_acc),
        ])
    emit(format_table(
        ["requests", "std OpenCL", "EK", "accelOS", "paper std/accelOS"],
        rows, title="Fig 9 ({}) — average system unfairness, lower is "
                    "better".format(device_name)))

    device = DEVICES[device_name]()
    benchmark(run_workload, ("bfs", "cutcp"), "baseline", device,
              repetitions=1)

    for k in (2, 4, 8):
        summary = sweep_summary(device_name, k)
        assert summary.avg_unfairness["accelos"] < \
            summary.avg_unfairness["baseline"]
    # baseline unfairness grows with the request count
    u = [sweep_summary(device_name, k).avg_unfairness["baseline"]
         for k in (2, 4, 8)]
    assert u[0] < u[1] < u[2]
